"""Unit tests for repro.verify.trace — recorder, digests, diffs, fixtures."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.traffic.generator import SyntheticTraffic
from repro.traffic.patterns import make_pattern
from repro.verify.trace import (
    TRACE_FORMAT,
    TraceRecorder,
    divergence_report,
    first_divergence,
    fixture_payload,
    load_fixture,
    record_digest,
    save_fixture,
    trace_digest,
)

from tests.conftest import make_mesh_network


def _record_run(cycles: int = 120, seed: int = 3) -> TraceRecorder:
    network = make_mesh_network(seed=seed)
    pattern = make_pattern("uniform", network.topology.num_nodes, 4)
    traffic = SyntheticTraffic(network, pattern, 0.10, seed=seed,
                               stop_at=cycles)
    simulator = Simulator()
    simulator.register(traffic)
    simulator.register(network)
    recorder = TraceRecorder(network)
    simulator.register_observer(recorder)
    simulator.run(cycles)
    return recorder


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
def test_recorder_one_record_per_cycle():
    recorder = _record_run(cycles=80)
    assert len(recorder.records) == 80
    assert len(recorder.cycle_digests) == 80
    # First field of each record is the cycle number, in order.
    assert [record[0] for record in recorder.records] == list(range(80))


def test_records_are_uid_free_and_json_canonical():
    recorder = _record_run(cycles=60)
    for record in recorder.records:
        # cycle + 4 deltas + in_flight + backlog + frozen, then event pairs.
        assert len(record) >= 8
        for field in record[:8]:
            assert isinstance(field, int)
        for event in record[8:]:
            name, delta = event
            assert isinstance(name, str)
            assert isinstance(delta, int)
            assert delta != 0
        # Round-trips through canonical JSON unchanged (fixture safety).
        payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
        assert json.loads(payload) == record


def test_deltas_sum_to_totals():
    recorder = _record_run(cycles=100)
    network = recorder.network
    created = sum(record[1] for record in recorder.records)
    injected = sum(record[2] for record in recorder.records)
    delivered = sum(record[3] for record in recorder.records)
    lost = sum(record[4] for record in recorder.records)
    assert created == network.stats.packets_created
    assert injected == network.stats.packets_injected
    assert delivered == network.stats.packets_delivered
    assert lost == network.stats.packets_lost
    assert delivered > 0  # the run actually did something


def test_identical_runs_agree_bit_for_bit():
    first = _record_run(cycles=90, seed=5)
    second = _record_run(cycles=90, seed=5)
    assert first.records == second.records
    assert first.cycle_digests == second.cycle_digests
    assert first.digest() == second.digest()
    assert first_divergence(first.records, second.records) is None


def test_different_seeds_diverge():
    first = _record_run(cycles=90, seed=5)
    second = _record_run(cycles=90, seed=6)
    assert first.digest() != second.digest()
    assert first_divergence(first.records, second.records) is not None


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------
def test_record_digest_stability():
    record = [3, 1, 1, 0, 0, 4, 2, 0, ["probes_sent", 2]]
    assert record_digest(record) == record_digest(list(record))
    assert record_digest(record) != record_digest(record[:-1])


def test_trace_digest_sensitive_to_order_and_content():
    a = [[0, 1], [1, 2]]
    b = [[1, 2], [0, 1]]
    assert trace_digest(a) != trace_digest(b)
    assert trace_digest(a) == trace_digest([list(r) for r in a])
    assert len(trace_digest(a)) == 64  # sha256 hex


# ----------------------------------------------------------------------
# Divergence diffs
# ----------------------------------------------------------------------
def test_first_divergence_positions():
    golden = [[0, 1], [1, 2], [2, 3]]
    same = [list(r) for r in golden]
    assert first_divergence(golden, same) is None

    mutated = [[0, 1], [1, 9], [2, 3]]
    index, expected, actual = first_divergence(golden, mutated)
    assert (index, expected, actual) == (1, [1, 2], [1, 9])

    truncated = golden[:2]
    index, expected, actual = first_divergence(golden, truncated)
    assert (index, expected, actual) == (2, [2, 3], None)

    extended = golden + [[3, 4]]
    index, expected, actual = first_divergence(golden, extended)
    assert (index, expected, actual) == (3, None, [3, 4])


def test_divergence_report_readable():
    golden = [[0, 0, 0, 0, 0, 0, 0, 0],
              [1, 1, 0, 0, 0, 1, 0, 0],
              [2, 0, 1, 0, 0, 1, 0, 0]]
    observed = [list(r) for r in golden]
    observed[2][2] = 0
    report = divergence_report(golden, observed)
    assert "first divergence at record 2" in report
    assert "cycle 2" in report
    assert "golden" in report and "observed" in report
    assert "fields:" in report
    # Context lines precede the diff pair.
    assert str(golden[1]) in report


def test_divergence_report_identical():
    golden = [[0, 1]]
    assert divergence_report(golden, [list(golden[0])]) \
        == "traces are identical"


# ----------------------------------------------------------------------
# Fixture I/O
# ----------------------------------------------------------------------
def test_fixture_roundtrip(tmp_path):
    recorder = _record_run(cycles=40)
    payload = fixture_payload("unit_scenario", {"seed": 3}, recorder)
    assert payload["format"] == TRACE_FORMAT
    assert payload["cycles"] == 40
    assert payload["digest"] == recorder.digest()
    path = tmp_path / "unit_scenario.json"
    save_fixture(path, payload)
    loaded = load_fixture(path)
    assert loaded == payload
    # The digest in the file matches a recomputation from its records.
    assert trace_digest(loaded["records"]) == loaded["digest"]


def test_load_fixture_rejects_wrong_format(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"format": "something-else", "records": []}))
    with pytest.raises(ConfigurationError) as excinfo:
        load_fixture(path)
    assert "golden-trace" in str(excinfo.value)

    path2 = tmp_path / "unversioned.json"
    path2.write_text(json.dumps({"records": []}))
    with pytest.raises(ConfigurationError):
        load_fixture(path2)
