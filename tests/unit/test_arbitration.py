"""Unit tests for switch-allocation arbitration fairness and constraints."""

from repro.config import SpinParams
from repro.network.packet import Packet
from repro.sim.engine import Simulator
from repro.topology.mesh import EAST, MeshTopology

from tests.conftest import _plant_packet, make_mesh_network


class TestRoundRobinFairness:
    def test_no_starvation_under_persistent_rival(self):
        # A packet at the WEST inport competes against a continuously
        # replenished stream at the SOUTH inport for the same east link;
        # round-robin arbitration must still serve it promptly.
        network = make_mesh_network(side=4, vcs=1)
        network.stats.open_window(0, None)
        mesh: MeshTopology = network.topology
        center = mesh.router_at(1, 1)
        dst = mesh.router_at(3, 1)
        from repro.topology.mesh import SOUTH, WEST

        sim = Simulator()
        sim.register(network)
        victim = _plant_packet(network, center, WEST, dst, now=sim.cycle)
        rival = _plant_packet(network, center, SOUTH, dst, now=sim.cycle)
        for _ in range(12):
            sim.run(1)
            if victim.hops >= 1:
                break
            vc = network.routers[center].inports[SOUTH][0]
            if vc.is_idle(sim.cycle):
                rival = _plant_packet(network, center, SOUTH, dst,
                                      now=sim.cycle)
        assert victim.hops >= 1, "round-robin must not starve the west port"

    def test_one_grant_per_output_port_per_cycle(self):
        network = make_mesh_network(side=4, vcs=1)
        network.stats.open_window(0, None)
        mesh = network.topology
        center = mesh.router_at(1, 1)
        dst = mesh.router_at(3, 1)
        from repro.topology.mesh import NORTH, SOUTH, WEST

        packets = [
            _plant_packet(network, center, WEST, dst),
            _plant_packet(network, center, SOUTH, dst),
            _plant_packet(network, center, NORTH, dst),
        ]
        sim = Simulator()
        sim.register(network)
        sim.run(1)
        assert sum(p.hops for p in packets) == 1

    def test_one_grant_per_input_port_per_cycle(self):
        # Two VCs at the same input port requesting different outputs may
        # not both cross the switch in one cycle.
        network = make_mesh_network(side=4, vcs=2)
        network.stats.open_window(0, None)
        mesh = network.topology
        center = mesh.router_at(1, 1)
        from repro.topology.mesh import WEST

        a = _plant_packet(network, center, WEST, mesh.router_at(3, 1),
                          vc_index=0)
        b = _plant_packet(network, center, WEST, mesh.router_at(1, 3),
                          vc_index=1)
        sim = Simulator()
        sim.register(network)
        sim.run(1)
        assert a.hops + b.hops == 1
        sim.run(1)
        assert a.hops + b.hops == 2


class TestAllocationSkipsQuietRouters:
    def test_empty_router_costs_nothing(self):
        network = make_mesh_network(side=4)
        assert network.routers[5].allocate(now=0) == 0

    def test_active_counter_tracks_occupancy(self):
        network = make_mesh_network(side=4)
        router = network.routers[5]
        assert router.active_vcs == 0
        packet = _plant_packet(network, 5, 1, 7)
        assert router.active_vcs == 1
        sim = Simulator()
        sim.register(network)
        sim.run(20)
        assert router.active_vcs == 0
