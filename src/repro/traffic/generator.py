"""Open-loop synthetic traffic generation.

Bernoulli arrivals per terminal at a configured *flit* injection rate (the
paper's unit: flits/node/cycle), with the paper's packet mix of 1-flit
control and 5-flit data packets for synthetic experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config import CONTROL_PACKET_FLITS, DATA_PACKET_FLITS
from repro.errors import ConfigurationError
from repro.network.packet import Packet
from repro.sim.rng import DeterministicRng
from repro.traffic.patterns import TrafficPattern


@dataclass(frozen=True)
class PacketMix:
    """Distribution over packet lengths.

    Attributes:
        lengths: Candidate packet lengths in flits.
        weights: Matching selection weights (need not be normalized).
    """

    lengths: Tuple[int, ...] = (CONTROL_PACKET_FLITS, DATA_PACKET_FLITS)
    weights: Tuple[float, ...] = (0.5, 0.5)

    def __post_init__(self) -> None:
        if len(self.lengths) != len(self.weights) or not self.lengths:
            raise ConfigurationError("lengths and weights must align")
        if min(self.weights) < 0 or sum(self.weights) <= 0:
            raise ConfigurationError("weights must be non-negative, not all 0")

    @property
    def mean_length(self) -> float:
        """Expected packet length in flits."""
        total = sum(self.weights)
        return sum(l * w for l, w in zip(self.lengths, self.weights)) / total

    def sample(self, rng: DeterministicRng) -> int:
        """Draw a packet length."""
        total = sum(self.weights)
        point = rng.random() * total
        for length, weight in zip(self.lengths, self.weights):
            point -= weight
            if point < 0:
                return length
        return self.lengths[-1]

    @staticmethod
    def single(length: int) -> "PacketMix":
        """A mix of one fixed length (e.g. Fig. 3's 1-flit packets)."""
        return PacketMix(lengths=(length,), weights=(1.0,))


class SyntheticTraffic:
    """Simulator component injecting pattern traffic at a fixed rate.

    Args:
        network: Target network.
        pattern: Destination map.
        injection_rate: Offered load in flits/node/cycle.
        mix: Packet-length distribution.
        seed: Traffic RNG seed (independent of the network RNG).
        vnet: Virtual network for generated packets.
        stop_at: Cycle to stop generating (start of the drain phase);
            None generates forever.
    """

    def __init__(self, network, pattern: TrafficPattern,
                 injection_rate: float, mix: Optional[PacketMix] = None,
                 seed: int = 1, vnet: int = 0,
                 stop_at: Optional[int] = None) -> None:
        if injection_rate < 0:
            raise ConfigurationError("injection rate must be >= 0")
        if pattern.num_nodes != network.topology.num_nodes:
            raise ConfigurationError(
                f"pattern sized for {pattern.num_nodes} nodes but the network "
                f"has {network.topology.num_nodes}")
        self.network = network
        self.pattern = pattern
        self.injection_rate = injection_rate
        self.mix = mix or PacketMix()
        self.vnet = vnet
        self.stop_at = stop_at
        self.rng = DeterministicRng(seed).fork("traffic")
        #: Per-cycle packet-generation probability per node.
        self.packet_probability = injection_rate / self.mix.mean_length

    def phase_inject(self, cycle: int) -> None:
        if self.stop_at is not None and cycle >= self.stop_at:
            return
        if self.packet_probability <= 0:
            return
        network = self.network
        rng = self.rng
        probability = self.packet_probability
        # Hot loop: one uniform draw per NIC per cycle.  Bind the underlying
        # generator's method once; the draw sequence is unchanged.
        random = rng._random.random
        for nic in network.nics:
            if random() >= probability:
                continue
            dst = self.pattern.dest(nic.node, rng)
            if dst is None:
                continue
            packet = Packet(
                src_node=nic.node,
                dst_node=dst,
                src_router=nic.router_id,
                dst_router=network.topology.router_of_node(dst),
                length=self.mix.sample(rng),
                vnet=self.vnet,
                create_cycle=cycle,
            )
            network.stats.record_creation(packet, cycle)
            nic.enqueue(packet)
