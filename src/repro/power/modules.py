"""SPIN hardware modules (paper Table II) and their sizing.

The only storage SPIN adds to a router is the control-path *loop buffer*
holding the deadlock path: ``log2(router radix) x N`` bits for an N-router
topology — about one flit for a 64-router mesh with 128-bit links, as the
paper notes.  The datapath gains no buffers at all, which is the crux of the
area comparison against escape-VC schemes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SpinModule:
    """One of the SPIN router modules of Table II."""

    name: str
    description: str


SPIN_MODULES: Tuple[SpinModule, ...] = (
    SpinModule(
        "FSM",
        "Manages SM traversals and correctness (Fig. 4a, Sec. IV-C2)."),
    SpinModule(
        "Probe Manager",
        "Scans input-port VCs for the set of unique waited-on output ports "
        "and forks received probes out of all of them."),
    SpinModule(
        "Move Manager",
        "Processes move, kill_move and probe_move messages based on the "
        "FSM state (Sec. IV-B)."),
    SpinModule(
        "Loop Buffer",
        "Stores the deadlock path: log2(router radix) x N bits for N "
        "routers (about 1 flit deep for a 64-core mesh with 128-bit links)."),
)


def loop_buffer_bits(radix: int, num_routers: int) -> int:
    """Size of the loop buffer in bits (Table II formula)."""
    port_bits = max(1, math.ceil(math.log2(max(2, radix))))
    return port_bits * num_routers


def loop_buffer_flits(radix: int, num_routers: int, flit_bits: int = 128) -> float:
    """Loop buffer depth expressed in flits (the paper's ~1-flit claim)."""
    return loop_buffer_bits(radix, num_routers) / flit_bits
