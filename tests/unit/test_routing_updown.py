"""Unit tests for up*/down* routing on irregular topologies."""

import networkx as nx
import pytest

from repro.config import NetworkConfig
from repro.network.network import Network
from repro.network.packet import Packet
from repro.routing.table import UpDownRouting
from repro.sim.rng import DeterministicRng
from repro.topology.irregular import IrregularTopology, faulty_mesh


def make_network(topology=None, seed=1):
    topology = topology or faulty_mesh(4, 4, num_failed_links=4,
                                       rng=DeterministicRng(7))
    return Network(topology, NetworkConfig(vcs_per_vnet=2),
                   UpDownRouting(seed), seed=seed)


def packet_to(dst, src=0):
    packet = Packet(src_node=src, dst_node=dst, src_router=src,
                    dst_router=dst, length=1)
    return packet


def walk(network, src, dst, chooser=min, limit=100):
    routing = network.routing
    packet = packet_to(dst, src)
    routing.on_inject(packet, 0)
    here = src
    path = [here]
    for _ in range(limit):
        if here == dst:
            return path
        router = network.routers[here]
        ports = routing.candidate_outports(router, packet)
        assert ports, f"stuck at {here} toward {dst}"
        port = chooser(ports)
        routing.on_hop(packet, router, port)
        here = router.out_neighbors[port][0].id
        path.append(here)
    raise AssertionError("walk did not terminate")


class TestLegality:
    def test_every_pair_routable(self):
        network = make_network()
        for src in range(network.topology.num_routers):
            for dst in range(network.topology.num_routers):
                if src != dst:
                    walk(network, src, dst)

    def test_no_up_after_down(self):
        network = make_network()
        routing = network.routing
        for src in range(network.topology.num_routers):
            for dst in range(network.topology.num_routers):
                if src == dst:
                    continue
                path = walk(network, src, dst, chooser=max)
                went_down = False
                for a, b in zip(path, path[1:]):
                    port = None
                    for p, (neighbor, _) in network.routers[a].out_neighbors.items():
                        if neighbor.id == b:
                            port = p
                            break
                    is_up = routing._is_up_hop[(a, port)]
                    if is_up:
                        assert not went_down, (src, dst, path)
                    else:
                        went_down = True

    def test_paths_are_shortest_legal(self):
        network = make_network()
        routing = network.routing
        for src in range(network.topology.num_routers):
            for dst in range(network.topology.num_routers):
                if src == dst:
                    continue
                path = walk(network, src, dst)
                assert len(path) - 1 == routing.legal_path_length(src, dst)

    def test_legal_paths_at_least_graph_distance(self):
        network = make_network()
        routing = network.routing
        topo = network.topology
        stretched = 0
        for src in range(topo.num_routers):
            for dst in range(topo.num_routers):
                if src == dst:
                    continue
                legal = routing.legal_path_length(src, dst)
                assert legal >= topo.min_hops(src, dst)
                if legal > topo.min_hops(src, dst):
                    stretched += 1
        # The restriction genuinely costs something on a degraded mesh —
        # the stretch SPIN's unrestricted routing avoids.
        assert stretched > 0


class TestCdg:
    def test_updown_walks_never_cycle_channels(self):
        # Structural guarantee: up*/down* orients channels acyclically.
        # Check the up-edge orientation is a DAG.
        network = make_network()
        routing = network.routing
        dag = nx.DiGraph()
        for (router, port), is_up in routing._is_up_hop.items():
            neighbor, _ = network.routers[router].out_neighbors[port]
            if is_up:
                dag.add_edge(router, neighbor.id)
        assert nx.is_directed_acyclic_graph(dag)


class TestOnArbitraryGraphs:
    @pytest.mark.parametrize("graph_builder", [
        lambda: nx.cycle_graph(7),
        lambda: nx.star_graph(5),
        lambda: nx.barbell_graph(4, 2),
    ])
    def test_works_on_misc_graphs(self, graph_builder):
        graph = nx.convert_node_labels_to_integers(graph_builder())
        topology = IrregularTopology(graph)
        network = make_network(topology)
        for src in range(topology.num_routers):
            for dst in range(topology.num_routers):
                if src != dst:
                    walk(network, src, dst)
