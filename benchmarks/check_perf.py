#!/usr/bin/env python
"""Perf-regression gate: compare a fresh bench record against history.

Reads the ``BENCH_sweep.json`` record a CI run just produced and the
committed ``BENCH_history.jsonl`` trajectory, finds the most recent history
entry with the *same configuration fingerprint* (design, pattern, rates,
seed, mesh side — plus the simulation window when both records carry it,
i.e. both are ``repro.bench-sweep/v4``), and fails when either tracked
speedup dropped by more than ``--max-regression-pct``:

* ``fast_engine.speedup_vs_serial`` — the honest full-sweep aggregate on
  busy networks (bit-identity enforced by the bench itself), and
* ``idle_skip.speedup`` — the event-driven regime the fast core exists for.

Speedups are *ratios of two legs timed in the same process*, so they are
far more stable across heterogeneous CI hosts than absolute wall times —
which is why the gate compares ratios and never seconds.  They still
wobble on noisy runners, hence the generous default threshold (20%) and
the escape hatch: put ``[bench-skip]`` in the head commit message (checked
via ``git log``, merge commits skipped so PR gates see the real head) or
set ``BENCH_SKIP=1`` to acknowledge an intended perf change.  When the
history has no entry matching the current configuration the gate passes
with a note — the freshly appended entry becomes the next baseline.

Usage (mirrors the CI ``perf`` job)::

    python benchmarks/check_perf.py --bench BENCH_sweep.json \
        --history BENCH_history.jsonl --max-regression-pct 20
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

SKIP_TOKEN = "[bench-skip]"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="BENCH_sweep.json",
                        metavar="FILE.json",
                        help="fresh record produced by bench_sweep.py")
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        metavar="FILE.jsonl",
                        help="committed append-only perf trajectory")
    parser.add_argument("--max-regression-pct", type=float, default=20.0,
                        help="allowed drop of each tracked speedup vs the "
                             "baseline, in percent")
    return parser


def fingerprint(record: dict) -> tuple:
    """Configuration identity of a bench record.

    v3 records carry only the coarse fields; v4 adds the simulation
    window.  Two records are comparable when every field *both* carry
    matches, so a v4 run still finds its v3 baseline.
    """
    coarse = (record.get("design"), record.get("pattern"),
              tuple(record.get("rates") or ()), record.get("seed"),
              record.get("mesh_side"))
    return coarse


def window_matches(current: dict, baseline: dict) -> bool:
    """Strict sim-window check, applied only when both records have one."""
    cur, base = current.get("sim"), baseline.get("sim")
    if cur is None or base is None:
        return True
    return cur == base


def head_commit_message() -> str:
    """Message of the commit under test (merge commits skipped)."""
    try:
        return subprocess.run(
            ["git", "log", "--no-merges", "-1", "--pretty=%B"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return ""


def tracked_speedups(record: dict) -> dict:
    return {
        "fast_engine.speedup_vs_serial":
            (record.get("fast_engine") or {}).get("speedup_vs_serial"),
        "idle_skip.speedup":
            (record.get("idle_skip") or {}).get("speedup"),
    }


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if os.environ.get("BENCH_SKIP") == "1":
        print("perf gate skipped: BENCH_SKIP=1")
        return 0
    message = head_commit_message()
    if SKIP_TOKEN in message:
        print(f"perf gate skipped: head commit message contains "
              f"{SKIP_TOKEN!r}")
        return 0

    current = json.loads(Path(args.bench).read_text())
    history_path = Path(args.history)
    if not history_path.exists():
        print(f"perf gate passed with a note: no history file at "
              f"{history_path} — nothing to compare against yet")
        return 0

    want = fingerprint(current)
    baseline = None
    baseline_recorded = None
    with open(history_path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            record = entry.get("bench") or {}
            if fingerprint(record) == want and window_matches(current,
                                                              record):
                baseline = record
                baseline_recorded = entry.get("recorded_unix")
    if baseline is None:
        print(f"perf gate passed with a note: no history entry matches "
              f"fingerprint {want} — this run seeds the baseline")
        return 0

    failures = []
    base_speedups = tracked_speedups(baseline)
    for name, now in tracked_speedups(current).items():
        then = base_speedups.get(name)
        if then is None or now is None:
            print(f"{name}: baseline or current value missing, not gated")
            continue
        drop_pct = (then - now) / then * 100.0
        verdict = "REGRESSED" if drop_pct > args.max_regression_pct else "ok"
        print(f"{name}: {then}x -> {now}x ({drop_pct:+.1f}% drop, "
              f"threshold {args.max_regression_pct:.0f}%) [{verdict}]")
        if verdict == "REGRESSED":
            failures.append(name)

    print(f"baseline: recorded_unix={baseline_recorded} "
          f"schema={baseline.get('schema')}")
    if failures:
        print(f"ERROR: perf regression beyond "
              f"{args.max_regression_pct:.0f}% on: {', '.join(failures)}. "
              f"If intended, commit with {SKIP_TOKEN!r} in the message.",
              file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
