"""Unit tests for the Static Bubble recovery baseline."""

import pytest

from repro.config import NetworkConfig
from repro.deadlock.static_bubble import (
    StaticBubbleControlPlane,
    StaticBubbleRouting,
)
from repro.errors import ConfigurationError
from repro.network.network import Network
from repro.network.packet import Packet
from repro.sim.engine import Simulator
from repro.topology.mesh import MeshTopology

from tests.conftest import make_mesh_network


def make_sb_network(side=4, vcs=3, tdd=16, seed=1):
    return Network(
        topology=MeshTopology(side, side),
        config=NetworkConfig(vcs_per_vnet=vcs),
        routing=StaticBubbleRouting(seed),
        control_planes=(StaticBubbleControlPlane(tdd),),
        seed=seed,
    )


class TestConfiguration:
    def test_needs_two_vcs(self):
        with pytest.raises(ConfigurationError):
            make_sb_network(vcs=1)

    def test_plane_requires_matching_routing(self):
        from repro.routing.adaptive import MinimalAdaptiveRouting

        with pytest.raises(ConfigurationError):
            Network(MeshTopology(4, 4), NetworkConfig(vcs_per_vnet=2),
                    MinimalAdaptiveRouting(0),
                    control_planes=(StaticBubbleControlPlane(16),))


class TestReservedVc:
    def test_normal_traffic_never_uses_reserved_vc(self):
        network = make_sb_network(vcs=3)
        routing = network.routing
        packet = Packet(0, 10, 0, 10, 1)
        assert list(routing.vc_choices(packet, network.routers[0], 1)) == [0, 1]
        assert list(routing.injection_vc_choices(packet)) == [0, 1]

    def test_escape_packets_use_only_reserved_vc(self):
        network = make_sb_network(vcs=3)
        routing = network.routing
        packet = Packet(0, 10, 0, 10, 1)
        packet.route_state["static_bubble_escape"] = True
        assert list(routing.vc_choices(packet, network.routers[0], 1)) == [2]

    def test_escape_packets_route_xy(self):
        network = make_sb_network(vcs=3)
        routing = network.routing
        mesh = network.topology
        packet = Packet(0, mesh.router_at(2, 2), 0, mesh.router_at(2, 2), 1)
        packet.route_state["static_bubble_escape"] = True
        ports = routing.candidate_outports(network.routers[0], packet)
        from repro.topology.mesh import EAST

        assert list(ports) == [EAST]


class TestRecovery:
    def test_timeout_switches_packet_to_escape(self):
        network = make_sb_network(vcs=2, tdd=10)
        # Plant a blocked packet: occupy its only adaptive VC downstream.
        mesh = network.topology
        from tests.conftest import _plant_packet
        from repro.topology.mesh import EAST, WEST

        blocked = _plant_packet(network, mesh.router_at(0, 0), 2,
                                mesh.router_at(3, 0))
        east_neighbor, east_inport = (
            network.routers[mesh.router_at(0, 0)].out_neighbors[EAST])
        blocker = _plant_packet(network, east_neighbor.id, east_inport,
                                mesh.router_at(3, 3))
        # Keep the blocker from ever moving by freezing-like occupancy:
        # block ITS downstream adaptive VCs too.
        sim = Simulator()
        sim.register(network)
        sim.run(60)
        assert network.stats.events.get("static_bubble_recoveries", 0) >= 0
        # Whether or not a recovery fired, nothing may be lost.
        assert (network.stats.packets_delivered
                + network.packets_in_flight()) == 2

    def test_deadlocked_square_recovers(self):
        from tests.conftest import craft_square_deadlock

        network = make_sb_network(vcs=2, tdd=12)
        packets = craft_square_deadlock(network)
        sim = Simulator()
        sim.register(network)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=2000)
        assert done
        assert network.stats.events.get("static_bubble_recoveries", 0) >= 1

    def test_sustained_load_drains(self):
        from repro.traffic.generator import PacketMix, SyntheticTraffic
        from repro.traffic.patterns import make_pattern

        network = make_sb_network(vcs=2, tdd=32, seed=7)
        network.stats.open_window(0, 1000)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.35, seed=7,
            stop_at=1000, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(12000)
        assert network.is_drained(), (
            network.packets_in_flight(), network.total_backlog())
        assert network.stats.packets_delivered == network.stats.packets_created
