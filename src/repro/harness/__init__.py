"""Experiment harness: named configurations, runners and report tables."""

from repro.harness.configs import (
    DesignConfig,
    MESH_DESIGNS,
    DRAGONFLY_DESIGNS,
    get_design,
    build_network,
)
from repro.harness.runner import latency_curve, run_design
from repro.harness.tables import format_table
from repro.harness.theories import TABLE_I, TheoryRow

__all__ = [
    "DesignConfig",
    "MESH_DESIGNS",
    "DRAGONFLY_DESIGNS",
    "get_design",
    "build_network",
    "latency_curve",
    "run_design",
    "format_table",
    "TABLE_I",
    "TheoryRow",
]
