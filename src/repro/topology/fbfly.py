"""2-D flattened butterfly (Kim et al., MICRO 2007).

A ``k x k`` grid of routers with *full* connectivity along each row and
each column: any destination is at most 2 hops away (one row hop + one
column hop).  High-radix, path-diverse, and — like the dragonfly — a
topology whose deadlock-avoidance schemes conventionally burn VCs on
dateline/ordering disciplines that SPIN renders unnecessary.

Port layout per router at (x, y):

* ports ``0 .. k-2``        — row peers (peer column ``c``: port ``c`` if
  ``c < x`` else ``c - 1``),
* ports ``k-1 .. 2k-3``     — column peers (same rule on rows, offset by
  ``k-1``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TopologyError
from repro.topology.base import LinkSpec, Topology


class FlattenedButterflyTopology(Topology):
    """k x k flattened butterfly with ``concentration`` terminals/router."""

    name = "fbfly"

    def __init__(self, k: int, concentration: int = 1,
                 link_latency: int = 1) -> None:
        super().__init__()
        if k < 2:
            raise TopologyError("flattened butterfly needs k >= 2")
        if concentration < 1:
            raise TopologyError("concentration must be >= 1")
        self.k = k
        self.concentration = concentration
        self.link_latency = link_latency
        self._links = self._build_links()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self.k * self.k

    @property
    def num_nodes(self) -> int:
        return self.num_routers * self.concentration

    def router_of_node(self, node: int) -> int:
        return node // self.concentration

    def coordinates(self, router: int) -> Tuple[int, int]:
        """(x, y) position of a router."""
        return router % self.k, router // self.k

    def router_at(self, x: int, y: int) -> int:
        """Router id at (x, y)."""
        return y * self.k + x

    def row_port_to(self, router: int, peer_x: int) -> int:
        """Port on ``router`` reaching the row peer in column ``peer_x``."""
        x, _ = self.coordinates(router)
        if peer_x == x:
            raise TopologyError("no self port")
        return peer_x if peer_x < x else peer_x - 1

    def column_port_to(self, router: int, peer_y: int) -> int:
        """Port on ``router`` reaching the column peer in row ``peer_y``."""
        _, y = self.coordinates(router)
        if peer_y == y:
            raise TopologyError("no self port")
        offset = peer_y if peer_y < y else peer_y - 1
        return (self.k - 1) + offset

    def min_hops(self, src_router: int, dst_router: int) -> int:
        sx, sy = self.coordinates(src_router)
        dx, dy = self.coordinates(dst_router)
        return (sx != dx) + (sy != dy)

    def links(self) -> List[LinkSpec]:
        return self._links

    def _build_links(self) -> List[LinkSpec]:
        links = []
        for router in range(self.num_routers):
            x, y = self.coordinates(router)
            for peer_x in range(self.k):
                if peer_x == x:
                    continue
                peer = self.router_at(peer_x, y)
                links.append(LinkSpec(
                    router, self.row_port_to(router, peer_x),
                    peer, self.row_port_to(peer, x), self.link_latency))
            for peer_y in range(self.k):
                if peer_y == y:
                    continue
                peer = self.router_at(x, peer_y)
                links.append(LinkSpec(
                    router, self.column_port_to(router, peer_y),
                    peer, self.column_port_to(peer, y), self.link_latency))
        return links
