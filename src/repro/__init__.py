"""repro — a full reproduction of SPIN (ISCA 2018).

SPIN (Synchronized Progress in Interconnection Networks) is a deadlock-
freedom framework that treats routing deadlocks as a coordination problem:
all packets of a deadlocked ring move one hop *simultaneously* ("a spin"),
which needs no free buffer anywhere and provably resolves the deadlock in a
bounded number of spins.  This package implements the theory, the paper's
distributed microarchitecture, the FAvORS one-VC fully adaptive routing
algorithm, the baselines it is compared against, and a cycle-accurate
network substrate to run them on.

Quickstart::

    from repro import quick_mesh_simulation

    result = quick_mesh_simulation(injection_rate=0.2)
    print(result.mean_latency, result.events.get("spins", 0))

See README.md for the full tour and DESIGN.md for the architecture.
"""

from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.stats.results import load_results, save_results
from repro.stats.sweep import (
    InjectionSweep,
    SweepPoint,
    run_point,
    simulate_point,
)

__version__ = "1.1.0"

__all__ = [
    "NetworkConfig",
    "SimulationConfig",
    "SpinParams",
    "Network",
    "Simulator",
    "InjectionSweep",
    "SweepPoint",
    "run_point",
    "simulate_point",
    "save_results",
    "load_results",
    "ExperimentSpec",
    "ParallelRunner",
    "quick_mesh_simulation",
]


def __getattr__(name):
    # Lazy: repro.harness pulls in topology/routing modules; keep
    # `import repro` light while still exposing the headline API.
    if name in ("ExperimentSpec", "ParallelRunner"):
        import repro.harness as harness

        return getattr(harness, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def quick_mesh_simulation(injection_rate: float = 0.1, side: int = 4,
                          vcs: int = 1, pattern: str = "uniform",
                          seed: int = 1,
                          sim_config: SimulationConfig = None) -> SweepPoint:
    """One-call demo: a small mesh with FAvORS-Min + SPIN.

    Args:
        injection_rate: Offered load in flits/node/cycle.
        side: Mesh dimension.
        vcs: VCs per port.
        pattern: Traffic pattern name (see repro.traffic.patterns).
        seed: RNG seed.
        sim_config: Simulation windows (defaults to a short run).

    Returns:
        The resulting :class:`SweepPoint`.
    """
    from repro.routing.favors import FavorsMinimal
    from repro.topology.mesh import MeshTopology
    from repro.traffic.generator import SyntheticTraffic
    from repro.traffic.patterns import make_pattern

    sim_config = sim_config or SimulationConfig(
        warmup_cycles=500, measure_cycles=2000, drain_cycles=1500)

    def network_factory():
        return Network(
            topology=MeshTopology(side, side),
            config=NetworkConfig(vcs_per_vnet=vcs),
            routing=FavorsMinimal(seed),
            spin=SpinParams(tdd=32),
            seed=seed,
        )

    def traffic_factory(network, rate, stop_at):
        return SyntheticTraffic(
            network, make_pattern(pattern, side * side, cols=side),
            rate, seed=seed, stop_at=stop_at)

    _, point = run_point(network_factory, traffic_factory, sim_config,
                         injection_rate=injection_rate)
    return point
