"""Unit tests for SPIN special messages and rotating priority."""

from repro.core.messages import (
    KillMoveMessage,
    MoveMessage,
    ProbeMessage,
    ProbeMoveMessage,
)
from repro.core.priority import RotatingPriority


class TestMessageClassPriorities:
    def test_paper_ordering(self):
        # probe_move > move = kill_move > probe (Sec. IV-C1)
        probe = ProbeMessage(sender=0, send_cycle=0)
        move = MoveMessage(sender=0, send_cycle=0)
        kill = KillMoveMessage(sender=0, send_cycle=0)
        probe_move = ProbeMoveMessage(sender=0, send_cycle=0)
        assert probe_move.class_priority > move.class_priority
        assert move.class_priority == kill.class_priority
        assert move.class_priority > probe.class_priority

    def test_kinds(self):
        assert ProbeMessage(0, 0).kind == "probe"
        assert MoveMessage(0, 0).kind == "move"
        assert ProbeMoveMessage(0, 0).kind == "probe_move"
        assert KillMoveMessage(0, 0).kind == "kill_move"


class TestProbePath:
    def test_fork_appends_outport(self):
        probe = ProbeMessage(sender=3, send_cycle=10)
        forked = probe.forked(2).forked(0)
        assert forked.path == (2, 0)
        assert forked.sender == 3
        assert forked.send_cycle == 10

    def test_fork_does_not_mutate_original(self):
        probe = ProbeMessage(sender=3, send_cycle=10)
        probe.forked(1)
        assert probe.path == ()


class TestMovePath:
    def test_advanced_strips_head_and_bumps_index(self):
        move = MoveMessage(sender=1, send_cycle=5, path=(2, 3, 0),
                           spin_cycle=40, hop_index=1)
        nxt = move.advanced()
        assert nxt.path == (3, 0)
        assert nxt.hop_index == 2
        assert nxt.spin_cycle == 40
        assert move.first_port == 2
        assert nxt.first_port == 3

    def test_messages_are_immutable(self):
        move = MoveMessage(sender=1, send_cycle=5, path=(2,))
        try:
            move.path = (9,)
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestRotatingPriority:
    def test_initial_priorities_are_ids(self):
        prio = RotatingPriority(num_routers=8, epoch_length=100)
        assert [prio.dynamic_priority(r, 0) for r in range(8)] == list(range(8))

    def test_rotation_after_epoch(self):
        prio = RotatingPriority(num_routers=8, epoch_length=100)
        assert prio.dynamic_priority(0, 100) == 1
        assert prio.dynamic_priority(7, 100) == 0

    def test_every_router_eventually_highest(self):
        prio = RotatingPriority(num_routers=5, epoch_length=10)
        winners = {prio.highest_priority_router(epoch * 10)
                   for epoch in range(5)}
        assert winners == set(range(5))

    def test_highest_matches_dynamic(self):
        prio = RotatingPriority(num_routers=6, epoch_length=13)
        for cycle in (0, 13, 26, 77, 130):
            top = prio.highest_priority_router(cycle)
            values = [prio.dynamic_priority(r, cycle) for r in range(6)]
            assert values[top] == max(values) == 5

    def test_cycles_until_highest(self):
        prio = RotatingPriority(num_routers=4, epoch_length=10)
        for router in range(4):
            wait = prio.cycles_until_highest(router, 0)
            assert prio.highest_priority_router(wait) == router

    def test_priorities_distinct_within_cycle(self):
        prio = RotatingPriority(num_routers=9, epoch_length=7)
        for cycle in (0, 7, 50):
            values = [prio.dynamic_priority(r, cycle) for r in range(9)]
            assert sorted(values) == list(range(9))
