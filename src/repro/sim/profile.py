"""Phase profiler for the simulation engines (``repro.profile/v1``).

Answers "where do the cycles go?" for both engines: per-phase wall time
for the reference :class:`~repro.sim.engine.Simulator` schedule, plus
fast-core counters (router cycles actually run vs skipped, controller
ticks, cycles fast-forwarded through quiescence) for
:class:`~repro.sim.fastcore.FastSimulator`.

Overhead contract: the profiler costs *nothing* when detached.  The
engine wraps its phase schedule with timing closures only at
schedule-build time and only when a profiler is attached
(:meth:`~repro.sim.engine.Simulator.attach_profiler`); with no profiler
the built schedule is exactly the pre-profiler one, and fast-core
counter sites are guarded by a single ``is not None`` check on paths
that already do real work.  The ``profile`` leg in
``benchmarks/bench_sweep.py`` guards this the way the telemetry leg
guards observer overhead.

Enable per-call (``simulate_point(..., profiler=...)``, ``cli profile``,
``cli run --profile``) or ambiently via ``REPRO_PROFILE=1``, which
prints a one-line phase summary to stderr after every point.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, Iterable, List, Optional

#: Version tag of profile reports.
PROFILE_SCHEMA = "repro.profile/v1"

#: Environment toggle: truthy values attach a profiler to every
#: ``simulate_point`` call and print a summary line to stderr.
PROFILE_ENV = "REPRO_PROFILE"

_FALSEY = {"", "0", "off", "false", "no"}


class PhaseProfiler:
    """Accumulates per-phase wall time, call counts, and counters.

    One instance may span several runs (e.g. warmup + measure + drain of
    one point, or a whole sweep) — times and counts accumulate.
    """

    def __init__(self) -> None:
        self.phase_seconds: Dict[str, float] = {}
        self.phase_calls: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}

    def wrap_phase(self, name: str, bound_methods: Iterable) -> object:
        """Fuse a phase's bound methods into one timed callable.

        The engine swaps this in for the phase's method list when the
        schedule is built with a profiler attached; each invocation adds
        the phase's wall time and one call.
        """
        methods = tuple(bound_methods)
        seconds = self.phase_seconds
        calls = self.phase_calls
        seconds.setdefault(name, 0.0)
        calls.setdefault(name, 0)
        perf = time.perf_counter

        def timed_phase(cycle: int) -> None:
            start = perf()
            for method in methods:
                method(cycle)
            seconds[name] += perf() - start
            calls[name] += 1

        return timed_phase

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a named counter (fast-core skip/run accounting)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def report(self, engine: str, cycles: int,
               wall_seconds: Optional[float] = None) -> Dict[str, object]:
        """One ``repro.profile/v1`` record for this accumulation."""
        total = sum(self.phase_seconds.values())
        phases = {}
        for name in sorted(self.phase_seconds):
            seconds = self.phase_seconds[name]
            phases[name] = {
                "seconds": round(seconds, 6),
                "calls": self.phase_calls.get(name, 0),
                "share": round(seconds / total, 4) if total > 0 else 0.0,
            }
        return {
            "schema": PROFILE_SCHEMA,
            "engine": engine,
            "cycles": cycles,
            "phase_seconds_total": round(total, 6),
            "wall_seconds": (round(wall_seconds, 6)
                             if wall_seconds is not None else None),
            "phases": phases,
            "counters": dict(sorted(self.counters.items())),
        }


def profiler_from_env(env: Optional[Dict[str, str]] = None
                      ) -> Optional[PhaseProfiler]:
    """A fresh profiler when ``REPRO_PROFILE`` is truthy, else ``None``."""
    value = (env if env is not None else os.environ).get(PROFILE_ENV, "")
    if value.strip().lower() in _FALSEY:
        return None
    return PhaseProfiler()


def render_report(report: Dict[str, object]) -> str:
    """Human-readable phase table for one profile report."""
    lines: List[str] = []
    lines.append(f"engine={report['engine']}  cycles={report['cycles']}  "
                 f"phase-time={report['phase_seconds_total']:.4f}s")
    lines.append(f"{'phase':<12} {'seconds':>10} {'share':>7} {'calls':>10}")
    lines.append("-" * 42)
    for name, row in report.get("phases", {}).items():
        lines.append(f"{name:<12} {row['seconds']:>10.4f} "
                     f"{row['share'] * 100:>6.1f}% {row['calls']:>10}")
    counters = report.get("counters") or {}
    if counters:
        lines.append("")
        lines.append(f"{'counter':<28} {'value':>12}")
        lines.append("-" * 42)
        for name, value in counters.items():
            lines.append(f"{name:<28} {value:>12}")
    return "\n".join(lines)


def summary_line(report: Dict[str, object]) -> str:
    """One-line phase summary (the ``REPRO_PROFILE=1`` stderr format)."""
    parts = [f"{name}={row['share'] * 100:.0f}%"
             for name, row in report.get("phases", {}).items()]
    return (f"[profile] engine={report['engine']} "
            f"cycles={report['cycles']} "
            f"phase-time={report['phase_seconds_total']:.3f}s "
            + " ".join(parts))


def emit_env_summary(report: Dict[str, object]) -> None:
    """Print the env-mode summary line to stderr (never raises)."""
    try:
        print(summary_line(report), file=sys.stderr)
    except OSError:  # pragma: no cover - stderr gone
        pass


def write_report(path: str, payload: Dict[str, object]) -> None:
    """Write a profile payload as stable, diffable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
