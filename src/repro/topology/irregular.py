"""Irregular topologies.

The paper positions SPIN as the natural deadlock-freedom framework for
irregular networks: random datacenter graphs (Jellyfish), meshes with faulty
or power-gated links, and accelerator fabrics.  This module wraps an
arbitrary connected :mod:`networkx` graph as a topology and provides a
``faulty_mesh`` helper that knocks links out of a 2-D mesh while preserving
connectivity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.errors import TopologyError
from repro.sim.rng import DeterministicRng
from repro.topology.base import LinkSpec, Topology
from repro.topology.mesh import MeshTopology


class IrregularTopology(Topology):
    """Topology defined by an arbitrary connected undirected graph.

    Ports are assigned per-router in ascending neighbor order, so the
    construction is deterministic for a given graph.

    Args:
        graph: Connected undirected graph whose nodes are ``0..n-1``.
        link_latency: Latency of every channel, or a dict mapping the
            undirected edge ``(min(u, v), max(u, v))`` to a latency.
    """

    name = "irregular"

    def __init__(self, graph: nx.Graph, link_latency=1) -> None:
        super().__init__()
        nodes = sorted(graph.nodes)
        if nodes != list(range(len(nodes))):
            raise TopologyError("graph nodes must be 0..n-1")
        if len(nodes) < 2:
            raise TopologyError("need at least 2 routers")
        if not nx.is_connected(graph):
            raise TopologyError("graph must be connected")
        self.graph = graph
        self._latency = link_latency
        self._port_of: Dict[Tuple[int, int], int] = {}
        for router in nodes:
            for port, peer in enumerate(sorted(graph.neighbors(router))):
                self._port_of[(router, peer)] = port
        self._links = self._build_links()

    def _edge_latency(self, u: int, v: int) -> int:
        if isinstance(self._latency, dict):
            return self._latency[(min(u, v), max(u, v))]
        return self._latency

    @property
    def num_routers(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_nodes(self) -> int:
        return self.num_routers

    def router_of_node(self, node: int) -> int:
        return node

    def port_toward(self, router: int, peer: int) -> int:
        """Port on ``router`` whose channel reaches adjacent ``peer``."""
        try:
            return self._port_of[(router, peer)]
        except KeyError:
            raise TopologyError(f"{router} and {peer} are not adjacent") from None

    def links(self) -> List[LinkSpec]:
        return self._links

    def _build_links(self) -> List[LinkSpec]:
        links = []
        for u, v in self.graph.edges:
            latency = self._edge_latency(u, v)
            links.append(LinkSpec(u, self._port_of[(u, v)],
                                  v, self._port_of[(v, u)], latency))
            links.append(LinkSpec(v, self._port_of[(v, u)],
                                  u, self._port_of[(u, v)], latency))
        return links


def faulty_mesh(cols: int, rows: int, num_failed_links: int,
                rng: Optional[DeterministicRng] = None,
                protected: Iterable[Tuple[int, int]] = ()) -> IrregularTopology:
    """A 2-D mesh with random link failures, guaranteed connected.

    Models the power-gated / faulty on-chip networks (Static Bubble's target
    domain) on which SPIN claims applicability without reconfiguration.

    Args:
        cols: Mesh columns.
        rows: Mesh rows.
        num_failed_links: How many bidirectional channels to remove.
        rng: Randomness source (defaults to seed 0).
        protected: Undirected edges ``(u, v)`` that must not fail.

    Returns:
        The degraded mesh as an :class:`IrregularTopology`.

    Raises:
        TopologyError: If that many links cannot fail without disconnecting
            the network.
    """
    rng = rng or DeterministicRng(0)
    mesh = MeshTopology(cols, rows)
    graph = nx.Graph()
    graph.add_nodes_from(range(mesh.num_routers))
    for link in mesh.links():
        graph.add_edge(link.src, link.dst)
    protected_set = {(min(u, v), max(u, v)) for u, v in protected}

    removed = 0
    candidates = [
        (min(u, v), max(u, v))
        for u, v in graph.edges
        if (min(u, v), max(u, v)) not in protected_set
    ]
    rng.shuffle(candidates)
    for edge in candidates:
        if removed == num_failed_links:
            break
        graph.remove_edge(*edge)
        if nx.is_connected(graph):
            removed += 1
        else:
            graph.add_edge(*edge)
    if removed < num_failed_links:
        raise TopologyError(
            f"could only fail {removed} of {num_failed_links} links "
            "without disconnecting the mesh"
        )
    return IrregularTopology(graph)


def random_regular_topology(num_routers: int, degree: int,
                            seed: int = 0) -> IrregularTopology:
    """A Jellyfish-style random regular graph topology.

    Args:
        num_routers: Number of routers (``num_routers * degree`` must be even).
        degree: Channels per router.
        seed: Seed for the graph sampler; retried until connected.
    """
    for attempt in range(100):
        graph = nx.random_regular_graph(degree, num_routers, seed=seed + attempt)
        if nx.is_connected(graph):
            return IrregularTopology(nx.convert_node_labels_to_integers(graph))
    raise TopologyError("failed to sample a connected random regular graph")
