"""Synthetic traffic patterns (Dally & Towles conventions).

These are the patterns of the paper's evaluation: uniform random, transpose,
tornado, neighbor, bit complement, bit reverse and bit rotation.  Each
pattern maps a source terminal to a destination terminal; the permutation
patterns are deterministic, uniform random draws from the supplied RNG.

Bit-oriented patterns require a power-of-two node count; transpose and
tornado have both a grid form (used when the mesh dimensions are known) and
a bit/ring form.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.rng import DeterministicRng


def _bits_of(num_nodes: int) -> int:
    bits = num_nodes.bit_length() - 1
    if 1 << bits != num_nodes:
        raise ConfigurationError(
            f"pattern needs a power-of-two node count (got {num_nodes})")
    return bits


class TrafficPattern(ABC):
    """Maps source terminals to destination terminals."""

    name = "pattern"

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ConfigurationError("patterns need at least 2 nodes")
        self.num_nodes = num_nodes

    @abstractmethod
    def dest(self, src: int, rng: DeterministicRng) -> Optional[int]:
        """Destination for a packet from ``src``.

        Returns None when the source generates no traffic under this
        pattern (a self-addressed permutation slot).
        """

    def _checked(self, dst: int, src: int) -> Optional[int]:
        return None if dst == src else dst


class UniformRandom(TrafficPattern):
    """Every destination equally likely (excluding the source)."""

    name = "uniform"

    def dest(self, src: int, rng: DeterministicRng) -> Optional[int]:
        dst = rng.randint(0, self.num_nodes - 2)
        return dst if dst < src else dst + 1


class BitComplement(TrafficPattern):
    """dst = ~src (bitwise complement), i.e. ``n - 1 - src``.

    The complement form is well defined for any node count (the paper's
    1056-terminal dragonfly is not a power of two either); only the
    shift-based patterns below need power-of-two addressing.
    """

    name = "bit_complement"

    def dest(self, src: int, rng: DeterministicRng) -> Optional[int]:
        return self._checked(self.num_nodes - 1 - src, src)


class BitReverse(TrafficPattern):
    """dst = bit-reversal of src."""

    name = "bit_reverse"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        self.bits = _bits_of(num_nodes)

    def dest(self, src: int, rng: DeterministicRng) -> Optional[int]:
        dst = 0
        value = src
        for _ in range(self.bits):
            dst = (dst << 1) | (value & 1)
            value >>= 1
        return self._checked(dst, src)


class BitRotation(TrafficPattern):
    """dst = src rotated right by one bit."""

    name = "bit_rotation"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        self.bits = _bits_of(num_nodes)

    def dest(self, src: int, rng: DeterministicRng) -> Optional[int]:
        dst = (src >> 1) | ((src & 1) << (self.bits - 1))
        return self._checked(dst, src)


class Shuffle(TrafficPattern):
    """dst = src rotated left by one bit (perfect shuffle)."""

    name = "shuffle"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        self.bits = _bits_of(num_nodes)

    def dest(self, src: int, rng: DeterministicRng) -> Optional[int]:
        dst = ((src << 1) | (src >> (self.bits - 1))) & (self.num_nodes - 1)
        return self._checked(dst, src)


class Transpose(TrafficPattern):
    """Matrix transpose: (x, y) -> (y, x) on a grid, or bit-half swap."""

    name = "transpose"

    def __init__(self, num_nodes: int, cols: Optional[int] = None) -> None:
        super().__init__(num_nodes)
        self.cols = cols
        if cols is not None:
            if num_nodes % cols:
                raise ConfigurationError("num_nodes must divide into rows")
            self.rows = num_nodes // cols
            if self.rows != cols:
                raise ConfigurationError("grid transpose needs a square grid")
        else:
            bits = _bits_of(num_nodes)
            if bits % 2:
                raise ConfigurationError(
                    "bit transpose needs an even number of address bits")
            self.half = bits // 2

    def dest(self, src: int, rng: DeterministicRng) -> Optional[int]:
        if self.cols is not None:
            x, y = src % self.cols, src // self.cols
            return self._checked(x * self.cols + y, src)
        low = src & ((1 << self.half) - 1)
        high = src >> self.half
        return self._checked((low << self.half) | high, src)


class Tornado(TrafficPattern):
    """Half-way-around traffic: maximal adversarial load on one dimension.

    With grid dimensions, each node sends half-way across the X dimension
    within its row (the paper's mesh tornado).  Without, it is the classic
    ring tornado ``dst = src + ceil(n/2) - 1 mod n``.
    """

    name = "tornado"

    def __init__(self, num_nodes: int, cols: Optional[int] = None) -> None:
        super().__init__(num_nodes)
        self.cols = cols

    def dest(self, src: int, rng: DeterministicRng) -> Optional[int]:
        if self.cols is not None:
            x, y = src % self.cols, src // self.cols
            dst_x = (x + self.cols // 2) % self.cols
            return self._checked(y * self.cols + dst_x, src)
        offset = (self.num_nodes + 1) // 2 - 1
        if offset == 0:
            offset = 1
        return self._checked((src + offset) % self.num_nodes, src)


class Neighbor(TrafficPattern):
    """dst = src + 1 (mod n): the VC-use-restriction stressor of Fig. 6."""

    name = "neighbor"

    def dest(self, src: int, rng: DeterministicRng) -> Optional[int]:
        return (src + 1) % self.num_nodes


_PATTERNS = {
    cls.name: cls
    for cls in (UniformRandom, BitComplement, BitReverse, BitRotation,
                Shuffle, Transpose, Tornado, Neighbor)
}


def make_pattern(name: str, num_nodes: int,
                 cols: Optional[int] = None) -> TrafficPattern:
    """Construct a pattern by name.

    Args:
        name: One of uniform, bit_complement, bit_reverse, bit_rotation,
            shuffle, transpose, tornado, neighbor.
        num_nodes: Terminal count of the network.
        cols: Grid width, consumed by the grid forms of transpose/tornado.
    """
    try:
        cls = _PATTERNS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown pattern {name!r}; choose from {sorted(_PATTERNS)}"
        ) from None
    if cls in (Transpose, Tornado):
        return cls(num_nodes, cols)
    return cls(num_nodes)
