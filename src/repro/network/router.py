"""Router model.

A single-cycle (configurable) virtual-cut-through router:

* **Route compute** — every ready head packet asks the routing algorithm for
  an output port each cycle (fully adaptive algorithms may change their
  answer as congestion evolves).  The answer is recorded in
  ``packet.current_request`` which SPIN's probe logic consumes.
* **Switch allocation** — separable: one grant per input port and one per
  output port per cycle, round-robin arbitration at each output port.
* **Switch/link traversal** — a granted packet reserves an idle downstream
  VC and streams its flits across the link, occupying the input port, the
  output link, and (progressively) the downstream buffer for ``length``
  cycles; see DESIGN.md §3 for the exact timing contract.

Port-number convention: network ports are small integers defined by the
topology; injection (NIC -> router) ports start at :data:`INJECT_PORT_BASE`;
ejection (router -> NIC) ports start at :data:`EJECT_PORT_BASE`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import NetworkConfig
from repro.errors import RoutingError
from repro.network.link import Link
from repro.network.packet import Packet
from repro.network.vc import VirtualChannel

#: First port index used for NIC->router injection ports.
INJECT_PORT_BASE = 1000
#: First port index used for router->NIC ejection ports.
EJECT_PORT_BASE = 2000


def is_ejection_port(port: int) -> bool:
    """Whether a port index denotes an ejection (router->NIC) port."""
    return port >= EJECT_PORT_BASE


def is_injection_port(port: int) -> bool:
    """Whether a port index denotes an injection (NIC->router) port."""
    return INJECT_PORT_BASE <= port < EJECT_PORT_BASE


class Router:
    """One network router."""

    def __init__(self, router_id: int, config: NetworkConfig) -> None:
        self.id = router_id
        self.config = config
        #: Network input ports: port index -> VCs (vnet-major order).
        self.inports: Dict[int, List[VirtualChannel]] = {}
        #: Injection ports from attached NICs.
        self.local_inports: Dict[int, List[VirtualChannel]] = {}
        #: Outbound links by network output port.
        self.out_links: Dict[int, Link] = {}
        #: Downstream (router, inport) by network output port.
        self.out_neighbors: Dict[int, Tuple["Router", int]] = {}
        #: Ejection port busy-until times (one per attached NIC).
        self.eject_busy: Dict[int, int] = {}
        #: Input-port busy-until times (switch input occupancy).
        self.port_busy: Dict[int, int] = {}
        #: Round-robin arbiter pointers per output port.
        self._rr: Dict[int, int] = {}
        #: Number of occupied VCs (fast skip for quiet routers).
        self.active_vcs = 0
        self.network = None  # set by Network

    # ------------------------------------------------------------------
    # Construction (called by Network)
    # ------------------------------------------------------------------
    def add_network_port(self, port: int) -> None:
        """Create the input VCs behind a network port."""
        self.inports[port] = self._make_vcs(port)
        self.port_busy[port] = -1

    def add_local_port(self, local_index: int) -> None:
        """Create injection/ejection ports for one attached NIC."""
        inject = INJECT_PORT_BASE + local_index
        self.local_inports[inject] = self._make_vcs(inject)
        self.port_busy[inject] = -1
        self.eject_busy[EJECT_PORT_BASE + local_index] = -1

    def _make_vcs(self, port: int) -> List[VirtualChannel]:
        vcs = []
        for vnet in range(self.config.num_vnets):
            for _ in range(self.config.vcs_per_vnet):
                vcs.append(VirtualChannel(self.id, port, len(vcs), vnet))
        return vcs

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def all_inports(self) -> Iterable[Tuple[int, List[VirtualChannel]]]:
        """Network input ports first, then injection ports."""
        yield from self.inports.items()
        yield from self.local_inports.items()

    def vcs_at(self, port: int) -> List[VirtualChannel]:
        """VCs behind any input port (network or injection)."""
        if port in self.inports:
            return self.inports[port]
        return self.local_inports[port]

    def vnet_slice(self, port: int, vnet: int) -> List[VirtualChannel]:
        """The VCs of one virtual network at an input port."""
        base = vnet * self.config.vcs_per_vnet
        return self.vcs_at(port)[base:base + self.config.vcs_per_vnet]

    def network_ports(self) -> List[int]:
        """Network output-port indices, ascending."""
        return sorted(self.out_links)

    def idle_downstream_vc(self, outport: int, vnet: int,
                           local_indices: Iterable[int],
                           now: int) -> Optional[VirtualChannel]:
        """First idle VC among the given class choices at the next hop."""
        neighbor, dst_port = self.out_neighbors[outport]
        vcs = neighbor.vnet_slice(dst_port, vnet)
        for idx in local_indices:
            if vcs[idx].is_idle(now):
                return vcs[idx]
        return None

    def downstream_has_idle(self, outport: int, vnet: int,
                            local_indices: Iterable[int], now: int) -> bool:
        """Whether any of the given downstream VC classes is idle."""
        return self.idle_downstream_vc(outport, vnet, local_indices, now) is not None

    def downstream_min_active_time(self, outport: int, vnet: int,
                                   local_indices: Iterable[int],
                                   now: int) -> int:
        """Minimum "active for" time among downstream VC choices.

        This is the congestion proxy FAvORS reads from credits (paper Sec. V):
        0 if any VC is idle, otherwise the smallest occupancy age.
        """
        neighbor, dst_port = self.out_neighbors[outport]
        vcs = neighbor.vnet_slice(dst_port, vnet)
        best = None
        for idx in local_indices:
            vc = vcs[idx]
            if vc.is_idle(now):
                return 0
            age = vc.active_time(now)
            if best is None or age < best:
                best = age
        if best is None:
            raise RoutingError(f"no VC choices given for outport {outport}")
        return best

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, now: int) -> int:
        """Run one cycle of route compute + switch allocation.

        Returns:
            Number of packets granted this cycle.
        """
        if self.active_vcs == 0:
            return 0
        routing = self.network.routing
        requests: Dict[int, List[VirtualChannel]] = {}
        for inport, vcs in self.all_inports():
            port_free = now > self.port_busy[inport]
            for vc in vcs:
                packet = vc.packet
                if packet is None or vc.frozen or now < vc.ready_at:
                    continue
                outport = routing.decide(self, inport, packet, now)
                if outport is None:
                    continue
                if port_free:
                    requests.setdefault(outport, []).append(vc)

        grants = 0
        granted_inports = set()
        for outport in sorted(requests):
            if is_ejection_port(outport):
                if now <= self.eject_busy[outport]:
                    continue
            else:
                link = self.out_links.get(outport)
                if link is None:
                    raise RoutingError(
                        f"router {self.id} has no output port {outport}")
                if not link.is_free(now):
                    continue
            viable: List[Tuple[VirtualChannel, Optional[VirtualChannel]]] = []
            for vc in requests[outport]:
                if vc.inport in granted_inports:
                    continue
                if is_ejection_port(outport):
                    viable.append((vc, None))
                else:
                    dvc = routing.pick_downstream_vc(
                        self, vc.packet, outport, now)
                    if dvc is not None:
                        viable.append((vc, dvc))
            if not viable:
                continue
            winner_vc, winner_dvc = self._arbitrate(outport, viable)
            granted_inports.add(winner_vc.inport)
            if is_ejection_port(outport):
                self._grant_ejection(winner_vc, outport, now)
            else:
                self._grant_network(winner_vc, winner_dvc, outport, now)
            grants += 1
        return grants

    def _arbitrate(self, outport: int, viable) -> Tuple[VirtualChannel, object]:
        """Round-robin choice among viable (vc, downstream vc) requests."""
        pointer = self._rr.get(outport, 0)
        # Order requests by a stable key and pick the first at/after pointer.
        viable.sort(key=lambda pair: (pair[0].inport, pair[0].index))
        keys = [(vc.inport * 64 + vc.index) for vc, _ in viable]
        chosen = 0
        for i, key in enumerate(keys):
            if key >= pointer:
                chosen = i
                break
        vc, dvc = viable[chosen]
        self._rr[outport] = keys[chosen] + 1
        return vc, dvc

    def _grant_network(self, vc: VirtualChannel, dvc: VirtualChannel,
                       outport: int, now: int) -> None:
        """Move a packet one hop: reserve downstream, start streaming."""
        packet = vc.release(now)
        link = self.out_links[outport]
        neighbor, _ = self.out_neighbors[outport]
        network = self.network
        routing = network.routing

        was_min = network.topology.min_hops(self.id, packet.routing_target)
        dvc.reserve(packet, now, link.latency, self.config.router_latency)
        link.occupy(now, packet.length)
        self.port_busy[vc.inport] = now + packet.length - 1
        packet.hops += 1
        now_min = network.topology.min_hops(neighbor.id, packet.routing_target)
        if now_min >= was_min:
            packet.misroutes += 1
        packet.current_request = None
        routing.on_hop(packet, self, outport)
        network.stats.count("flit_hops", packet.length)
        network.note_vc_released(self, vc)
        network.note_vc_reserved(neighbor, dvc)
        network.note_movement()

    def _grant_ejection(self, vc: VirtualChannel, outport: int,
                        now: int) -> None:
        """Deliver a packet to its destination NIC."""
        packet = vc.release(now)
        self.eject_busy[outport] = now + packet.length - 1
        self.port_busy[vc.inport] = now + packet.length - 1
        # Tail reaches the NIC after the 1-cycle local link plus serialization.
        packet.eject_cycle = now + 1 + packet.length - 1
        packet.current_request = None
        self.network.deliver(packet, self.id, outport, now)
        self.network.note_vc_released(self, vc)
        self.network.note_movement()

    def __repr__(self) -> str:
        return f"Router({self.id}, ports={sorted(self.out_links)})"
