"""Unit tests for the analytical area/power model.

Every assertion here is an anchor from the paper; together they make the
calibration of DESIGN.md substitution note 3 falsifiable.
"""

import pytest

from repro.power.model import AreaModel, EnergyModel, RouterSpec, network_edp, network_energy
from repro.power.modules import SPIN_MODULES, loop_buffer_bits, loop_buffer_flits

MESH_RADIX = 5       # 4 network ports + 1 local
DRAGONFLY_RADIX = 16  # 7 local + 4 global + 4 terminals (p=4,a=8,h=4), rounded


def reduction(a, b):
    """Fractional reduction of a relative to b."""
    return 1.0 - a / b


class TestPaperAreaAnchors:
    def test_mesh_1vc_vs_3vc(self):
        model = AreaModel()
        r = reduction(model.router_area(RouterSpec(MESH_RADIX, 1)),
                      model.router_area(RouterSpec(MESH_RADIX, 3)))
        assert r == pytest.approx(0.52, abs=0.02)  # paper: 52%

    def test_mesh_1vc_vs_2vc(self):
        model = AreaModel()
        r = reduction(model.router_area(RouterSpec(MESH_RADIX, 1)),
                      model.router_area(RouterSpec(MESH_RADIX, 2)))
        assert r == pytest.approx(0.36, abs=0.02)  # paper: 36%

    def test_dragonfly_1vc_vs_3vc(self):
        model = AreaModel()
        r = reduction(model.router_area(RouterSpec(DRAGONFLY_RADIX, 1)),
                      model.router_area(RouterSpec(DRAGONFLY_RADIX, 3)))
        assert r == pytest.approx(0.53, abs=0.02)  # paper: 53%


class TestPaperPowerAnchors:
    def test_mesh_1vc_vs_3vc(self):
        model = EnergyModel()
        r = reduction(model.router_power(RouterSpec(MESH_RADIX, 1)),
                      model.router_power(RouterSpec(MESH_RADIX, 3)))
        assert r == pytest.approx(0.50, abs=0.02)  # paper: 50%

    def test_mesh_1vc_vs_2vc(self):
        model = EnergyModel()
        r = reduction(model.router_power(RouterSpec(MESH_RADIX, 1)),
                      model.router_power(RouterSpec(MESH_RADIX, 2)))
        assert r == pytest.approx(0.34, abs=0.02)  # paper: 34%

    def test_dragonfly_1vc_vs_3vc(self):
        model = EnergyModel()
        r = reduction(model.router_power(RouterSpec(DRAGONFLY_RADIX, 1)),
                      model.router_power(RouterSpec(DRAGONFLY_RADIX, 3)))
        assert r == pytest.approx(0.55, abs=0.02)  # paper: 55%


class TestFigure10Anchors:
    def overhead(self, design):
        model = AreaModel()
        spec = RouterSpec(MESH_RADIX, 3)
        return model.design_area(design, spec) / model.design_area(
            "westfirst", spec) - 1.0

    def test_spin_four_percent(self):
        assert self.overhead("spin") == pytest.approx(0.04, abs=0.01)

    def test_static_bubble_ten_percent(self):
        assert self.overhead("static_bubble") == pytest.approx(0.10, abs=0.01)

    def test_escape_vc_hundred_percent(self):
        assert self.overhead("escape_vc") == pytest.approx(1.00, abs=0.05)

    def test_unknown_design_raises(self):
        with pytest.raises(ValueError):
            AreaModel().design_area("bogus", RouterSpec(5, 3))


class TestSpinModules:
    def test_table_ii_modules(self):
        names = [m.name for m in SPIN_MODULES]
        assert names == ["FSM", "Probe Manager", "Move Manager", "Loop Buffer"]

    def test_loop_buffer_formula(self):
        # log2(radix) x N bits: 64-router mesh, radix 5 -> 3 bits -> 192.
        assert loop_buffer_bits(5, 64) == 3 * 64

    def test_loop_buffer_about_one_flit_for_64_mesh(self):
        # The paper: "1-flit deep assuming 128-bit links".
        depth = loop_buffer_flits(5, 64, flit_bits=128)
        assert 1.0 <= depth <= 2.0


class TestScaling:
    def test_area_monotone_in_vcs(self):
        model = AreaModel()
        areas = [model.router_area(RouterSpec(5, v)) for v in (1, 2, 3, 4)]
        assert areas == sorted(areas)

    def test_area_monotone_in_depth(self):
        model = AreaModel()
        assert model.router_area(RouterSpec(5, 2, buffer_depth=10)) > (
            model.router_area(RouterSpec(5, 2, buffer_depth=5)))

    def test_wider_flits_cost_more(self):
        model = AreaModel()
        assert model.router_area(RouterSpec(5, 2, flit_bits=256)) > (
            model.router_area(RouterSpec(5, 2, flit_bits=128)))


class TestEnergyAccounting:
    def test_network_energy_counts_flit_hops(self):
        from tests.conftest import make_mesh_network

        network = make_mesh_network()
        network.stats.count("flit_hops", 100)
        spec = RouterSpec(5, 1)
        with_traffic = network_energy(network, spec, cycles=1000)
        network.stats.events["flit_hops"] = 0
        without = network_energy(network, spec, cycles=1000)
        assert with_traffic > without

    def test_edp_scales_with_latency(self):
        from tests.conftest import make_mesh_network

        network = make_mesh_network()
        network.stats.count("flit_hops", 100)
        network.stats.latencies.extend([10] * 10)
        spec = RouterSpec(5, 1)
        low = network_edp(network, spec, cycles=1000)
        network.stats.latencies[:] = [100] * 10
        high = network_edp(network, spec, cycles=1000)
        assert high == pytest.approx(10 * low)
