"""Unit/integration tests for torus bubble flow control."""

import pytest

from repro.config import NetworkConfig
from repro.deadlock.bubble import BubbleFlowControlRouting, ring_of_hop
from repro.deadlock.waitgraph import has_deadlock
from repro.errors import ConfigurationError
from repro.network.network import Network
from repro.routing.dor import DimensionOrderRouting
from repro.sim.engine import Simulator
from repro.topology.mesh import EAST, MeshTopology, NORTH, SOUTH, WEST
from repro.topology.torus import TorusTopology
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern


def torus_network(routing, cols=4, rows=4, vcs=1, seed=1):
    return Network(TorusTopology(cols, rows), NetworkConfig(vcs_per_vnet=vcs),
                   routing, seed=seed)


def drive(network, rate, inject_until, total, seed=1):
    network.stats.open_window(0, inject_until)
    traffic = SyntheticTraffic(
        network, make_pattern("uniform", network.topology.num_nodes), rate,
        seed=seed, stop_at=inject_until, mix=PacketMix.single(1))
    sim = Simulator()
    sim.register(traffic)
    sim.register(network)
    sim.run(total)
    return sim


class TestRingIndex:
    def test_requires_torus(self):
        with pytest.raises(ConfigurationError):
            Network(MeshTopology(4, 4), NetworkConfig(),
                    BubbleFlowControlRouting(0))

    def test_ring_of_hop(self):
        topology = TorusTopology(4, 4)
        assert ring_of_hop(topology, topology.router_at(2, 1), EAST) == ("x", 1, EAST)
        assert ring_of_hop(topology, topology.router_at(2, 1), WEST) == ("x", 1, WEST)
        assert ring_of_hop(topology, topology.router_at(2, 1), SOUTH) == ("y", 2, SOUTH)

    def test_ring_buffer_counts(self):
        network = torus_network(BubbleFlowControlRouting(0), vcs=2)
        routing = network.routing
        for key, vcs in routing._ring_vcs.items():
            assert len(vcs) == 4 * 2  # ring length x VCs per port

    def test_all_rings_indexed(self):
        network = torus_network(BubbleFlowControlRouting(0))
        # 2 dims x 4 indices x 2 directions.
        assert len(network.routing._ring_vcs) == 16


class TestDeadlockBehaviour:
    def test_plain_dor_torus_deadlocks(self):
        network = torus_network(DimensionOrderRouting(0), seed=5)
        drive(network, 0.35, inject_until=2500, total=2500, seed=5)
        assert has_deadlock(network, network.now)

    def test_bubble_prevents_deadlock(self):
        network = torus_network(BubbleFlowControlRouting(0), seed=5)
        sim = drive(network, 0.35, inject_until=1500, total=9000, seed=5)
        assert network.is_drained(), (
            network.packets_in_flight(), network.total_backlog())
        assert network.stats.packets_delivered == network.stats.packets_created

    def test_bubble_invariant_holds_throughout(self):
        network = torus_network(BubbleFlowControlRouting(0), seed=7)
        network.stats.open_window(0, 1500)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.4, seed=7,
            stop_at=1500, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        routing = network.routing
        for _ in range(40):
            sim.run(50)
            for key in routing._ring_vcs:
                assert routing.free_ring_buffers(key, sim.cycle) >= 1, key

    def test_oracle_agrees_bubble_is_deadlock_free(self):
        network = torus_network(BubbleFlowControlRouting(0), seed=3)
        network.stats.open_window(0, 2000)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.35, seed=3,
            stop_at=2000, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        for _ in range(20):
            sim.run(100)
            assert not has_deadlock(network, sim.cycle)


class TestRestrictionCost:
    def test_injection_restricted_under_load(self):
        # The Table I cost: bubble entry restrictions throttle injection.
        bubble = torus_network(BubbleFlowControlRouting(0), seed=9)
        drive(bubble, 0.5, inject_until=1200, total=1200, seed=9)
        free = torus_network(DimensionOrderRouting(0), vcs=3, seed=9)
        drive(free, 0.5, inject_until=1200, total=1200, seed=9)
        # With equal offered load, the bubble design holds more packets at
        # the NICs (it refuses entries that would consume the last bubble).
        assert bubble.stats.packets_injected <= free.stats.packets_injected
