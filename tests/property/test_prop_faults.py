"""Property-based tests for fault schedules and fault-tolerant recovery.

Three families of properties (docs/FAULTS.md):

* grammar — every valid :class:`FaultSchedule` survives a describe/parse
  round trip unchanged, so specs are a faithful serialization;
* determinism — a (spec, fault-seed) pair fully determines every fault
  decision: two identical runs produce identical event counters;
* liveness — connectivity-preserving link failures and bounded SM-drop
  budgets never stop SPIN from resolving a crafted deadlock, and no run
  raises (a ProtocolError would propagate and fail the example).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SpinParams
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    LinkStateEvent,
    RouterStateEvent,
    SmFaultPolicy,
    parse_fault_spec,
)
from repro.sim.engine import Simulator

from tests.conftest import (
    craft_ring_deadlock,
    craft_square_deadlock,
    make_mesh_network,
    make_ring_network,
)

# Dyadic probabilities and ``%g``-stable ints keep describe() lossless.
_PROBS = st.sampled_from([0.0625, 0.125, 0.25, 0.5, 0.75, 1.0])
_KINDS = st.sampled_from([None, "probe", "move", "probe_move", "kill_move"])
_CYCLES = st.integers(0, 99_999)


@st.composite
def link_events(draw):
    a = draw(st.integers(0, 63))
    b = draw(st.integers(0, 63).filter(lambda x: x != a))
    return LinkStateEvent(cycle=draw(_CYCLES), a=a, b=b,
                          up=draw(st.booleans()))


@st.composite
def router_events(draw):
    return RouterStateEvent(cycle=draw(_CYCLES),
                            router=draw(st.integers(0, 63)),
                            up=draw(st.booleans()))


@st.composite
def sm_policies(draw):
    action = draw(st.sampled_from(["drop", "delay", "corrupt"]))
    after = draw(st.integers(0, 5000))
    until = draw(st.one_of(st.none(), st.integers(after + 1, after + 5000)))
    return SmFaultPolicy(
        action=action,
        probability=draw(_PROBS),
        kind=draw(_KINDS),
        after=after,
        until=until,
        count=draw(st.one_of(st.none(), st.integers(1, 1000))),
        delay=draw(st.integers(1, 64)) if action == "delay" else 0,
    )


@st.composite
def schedules(draw):
    timed = draw(st.lists(st.one_of(link_events(), router_events()),
                          max_size=4))
    policies = draw(st.lists(sm_policies(), max_size=3))
    return FaultSchedule(timed_events=tuple(timed),
                         sm_policies=tuple(policies))


class TestSpecRoundTrip:
    @given(schedule=schedules())
    @settings(max_examples=200, deadline=None)
    def test_describe_parse_round_trip(self, schedule):
        """describe() is a lossless, canonical serialization."""
        if schedule.empty:
            return  # the empty spec string is (deliberately) not parsable
        assert parse_fault_spec(schedule.describe()) == schedule

    @given(schedule=schedules())
    @settings(max_examples=50, deadline=None)
    def test_describe_is_idempotent(self, schedule):
        if schedule.empty:
            return
        once = schedule.describe()
        assert parse_fault_spec(once).describe() == once


def _run_faulty_ring(spec, fault_seed, m=6, dst_ahead=2, cycles=3000):
    network = make_ring_network(m=m, spin=SpinParams(tdd=16))
    injector = FaultInjector(parse_fault_spec(spec), seed=fault_seed)
    injector.bind(network)
    packets = craft_ring_deadlock(network, dst_ahead=dst_ahead)
    sim = Simulator()
    sim.register(injector)
    sim.register(network)
    sim.run(cycles)
    return network, packets


class TestDeterminism:
    @given(fault_seed=st.integers(0, 10_000),
           p=st.sampled_from([0.05, 0.2, 0.5]),
           kind=st.sampled_from(["", ":kind=probe", ":kind=move"]))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_history(self, fault_seed, p, kind):
        """A (spec, fault-seed) pair pins down every probabilistic fault
        decision: both runs see identical counters and deliveries."""
        spec = f"sm_drop:p={p}{kind}"
        net_a, _ = _run_faulty_ring(spec, fault_seed)
        net_b, _ = _run_faulty_ring(spec, fault_seed)
        assert dict(net_a.stats.events) == dict(net_b.stats.events)
        assert net_a.stats.packets_delivered == net_b.stats.packets_delivered


# Single links of a 4x4 mesh whose loss keeps the graph connected and
# leaves every crafted-square destination minimally reachable.
_SAFE_MESH_LINKS = [(0, 1), (2, 3), (3, 7), (12, 13), (14, 15), (0, 4),
                    (8, 12), (11, 15)]


class TestFaultyLiveness:
    @given(link=st.sampled_from(_SAFE_MESH_LINKS),
           cycle=st.integers(0, 64), seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_connectivity_preserving_link_loss_recoverable(
            self, link, cycle, seed):
        """Any single connectivity-preserving link failure leaves a crafted
        mesh deadlock fully recoverable by SPIN."""
        network = make_mesh_network(side=4, spin=SpinParams(tdd=24),
                                    seed=seed)
        a, b = link
        injector = FaultInjector(
            parse_fault_spec(f"link_down@{cycle}:r{a}-r{b}"), seed=seed)
        injector.bind(network)
        packets = craft_square_deadlock(network)
        sim = Simulator()
        sim.register(injector)
        sim.register(network)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=6000)
        assert done, dict(network.stats.events)
        assert network.spin.frozen_vc_count() == 0
        assert network.dead_link_count == 2

    @given(budget=st.integers(1, 24),
           kind=st.sampled_from(["probe", "move", ""]),
           fault_seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_bounded_sm_drop_budget_still_recovers(self, budget, kind,
                                                   fault_seed):
        """Any finite SM-drop budget delays but never defeats recovery."""
        scope = f":kind={kind}" if kind else ""
        network, packets = _run_faulty_ring(
            f"sm_drop:n={budget}{scope}", fault_seed, cycles=8000)
        events = dict(network.stats.events)
        assert network.stats.packets_delivered == len(packets), events
        assert network.spin.frozen_vc_count() == 0
