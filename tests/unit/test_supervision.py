"""Unit tests for worker supervision: classification, retries, the pool.

Pool tests spawn real worker processes; windows stay tiny and the chaos
hook (``REPRO_CHAOS``) provides deterministic crashes and hangs.  Workers
are forked, so monkeypatching the environment before ``start()`` is how
chaos reaches them.
"""

import time

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.harness.chaos import CHAOS_ENV, CRASH_EXIT_CODE
from repro.harness.runner import ExperimentSpec
from repro.harness.supervision import (
    DETERMINISTIC,
    TRANSIENT,
    RetryPolicy,
    SupervisedPool,
    classify_failure,
    error_class,
    run_attempt,
)

TINY = SimulationConfig(warmup_cycles=50, measure_cycles=200,
                        drain_cycles=150, deadlock_abort_cycles=300)


def tiny_spec(**overrides):
    kwargs = dict(design="spin_mesh", pattern="uniform", injection_rate=0.05,
                  mesh_side=4, tdd=32, sim=TINY)
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


def drain_events(pool, expected, deadline_seconds=30.0):
    """Collect events until ``expected`` results arrive (or time out)."""
    collected = []
    deadline = time.monotonic() + deadline_seconds
    while len(collected) < expected:
        assert time.monotonic() < deadline, (
            f"pool produced {len(collected)}/{expected} events in time")
        collected.extend(pool.events(timeout=0.2))
    return collected


class TestClassification:
    def test_transient_prefixes(self):
        for error in ("worker crashed: exit code 9",
                      "worker hung: no completion within 1.0s of pickup",
                      "timeout: point exceeded 5s",
                      "not run: worker pool broke earlier"):
            assert classify_failure(error) == TRANSIENT

    def test_spec_exception_is_deterministic(self):
        assert classify_failure(
            "worker raised:\nTraceback ...") == DETERMINISTIC

    def test_empty_error_is_deterministic(self):
        assert classify_failure(None) == DETERMINISTIC
        assert classify_failure("") == DETERMINISTIC

    def test_error_class_labels(self):
        assert error_class("worker crashed: exit code 9") == "worker crashed"
        assert error_class("timeout: point exceeded 5s") == "timeout"
        assert error_class("worker raised:\nTraceback") == "worker raised"
        assert error_class(None) == "unknown"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="retries"):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigurationError, match="backoff"):
            RetryPolicy(base=-0.5)

    def test_delay_deterministic(self):
        policy = RetryPolicy(retries=3, base=0.25, cap=8.0)
        delays = [policy.delay("somekey", a) for a in range(4)]
        assert delays == [policy.delay("somekey", a) for a in range(4)]

    def test_delay_exponential_and_capped(self):
        policy = RetryPolicy(retries=8, base=0.25, cap=2.0)
        for attempt in range(8):
            bounded = min(2.0, 0.25 * 2.0 ** attempt)
            delay = policy.delay("k", attempt)
            assert 0.5 * bounded <= delay <= bounded

    def test_jitter_varies_by_key(self):
        policy = RetryPolicy()
        delays = {policy.delay(f"key{i}", 0) for i in range(16)}
        assert len(delays) > 1


class TestRunAttempt:
    def test_success_returns_point(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        result = run_attempt(tiny_spec())
        assert result.ok
        assert result.point.injection_rate == 0.05
        assert result.wall_time > 0.0

    def test_spec_exception_captured_as_worker_raised(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        result = run_attempt(tiny_spec(pattern="nonexistent"))
        assert not result.ok
        assert result.error.startswith("worker raised:")
        assert classify_failure(result.error) == DETERMINISTIC

    def test_chaos_fail_hits_attempt_zero_only(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "fail:p=1.0")
        failed = run_attempt(tiny_spec(), attempt=0)
        assert not failed.ok and "chaos" in failed.error
        retried = run_attempt(tiny_spec(), attempt=1)
        assert retried.ok


class TestSupervisedPoolValidation:
    def test_bad_workers(self):
        with pytest.raises(ConfigurationError, match="max_workers"):
            SupervisedPool(max_workers=0)

    def test_bad_hang_timeout(self):
        with pytest.raises(ConfigurationError, match="hang_timeout"):
            SupervisedPool(max_workers=1, hang_timeout=0)

    def test_submit_before_start_rejected(self):
        with pytest.raises(ConfigurationError, match="not started"):
            SupervisedPool(max_workers=1).submit(0, 0, tiny_spec())


class TestSupervisedPool:
    def test_runs_specs_to_completion(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        specs = tiny_spec().curve([0.02, 0.05, 0.08])
        pool = SupervisedPool(max_workers=2).start()
        try:
            for task_id, spec in enumerate(specs):
                pool.submit(task_id, 0, spec)
            events = drain_events(pool, len(specs))
        finally:
            pool.stop()
        assert sorted(task_id for task_id, _, _ in events) == [0, 1, 2]
        assert all(result.ok for _, _, result in events)
        by_id = {task_id: result for task_id, _, result in events}
        assert by_id[0].point.injection_rate == 0.02

    def test_crash_detected_and_worker_respawned(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:p=1.0")
        counters = {}
        pool = SupervisedPool(max_workers=2, counters=counters).start()
        try:
            spec = tiny_spec()
            pool.submit(0, 0, spec)
            (task_id, attempt, result), = drain_events(pool, 1)
            assert (task_id, attempt) == (0, 0)
            assert not result.ok
            assert "worker crashed" in result.error
            assert str(CRASH_EXIT_CODE) in result.error
            assert classify_failure(result.error) == TRANSIENT
            # The pool must still be serviceable: the chaos rule spares
            # attempt 1, so the retry lands on a respawned worker.
            pool.submit(0, 1, spec)
            (_, retry_attempt, retried), = drain_events(pool, 1)
            assert retry_attempt == 1
            assert retried.ok
        finally:
            pool.stop()
        assert counters.get("workers_respawned", 0) >= 1

    def test_hang_detected_killed_and_respawned(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "hang:p=1.0,hang=60")
        counters = {}
        pool = SupervisedPool(max_workers=1, hang_timeout=0.5,
                              counters=counters).start()
        try:
            spec = tiny_spec()
            pool.submit(0, 0, spec)
            (task_id, attempt, result), = drain_events(pool, 1)
            assert (task_id, attempt) == (0, 0)
            assert not result.ok
            assert "worker hung" in result.error
            assert classify_failure(result.error) == TRANSIENT
            pool.submit(0, 1, spec)
            (_, _, retried), = drain_events(pool, 1)
            assert retried.ok
        finally:
            pool.stop()
        assert counters.get("workers_hung", 0) >= 1
        assert counters.get("workers_respawned", 0) >= 1

    def test_stop_is_idempotent_and_kills_workers(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        pool = SupervisedPool(max_workers=2).start()
        workers = list(pool._workers.values())
        pool.stop()
        pool.stop()
        assert all(not process.is_alive() for process in workers)
