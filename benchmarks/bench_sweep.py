#!/usr/bin/env python
"""Sweep-engine benchmark: serial vs parallel vs fast-engine wall-clock.

Runs the same list of :class:`ExperimentSpec` points serially, across
``--jobs`` worker processes, and under the ``fast`` engine — verifies every
leg produces *identical* points — and writes a ``BENCH_sweep.json``
record::

    {
      "schema": "repro.bench-sweep/v4",
      "design": ..., "pattern": ..., "rates": [...], "jobs": N,
      "tdd": ..., "sim": {...},         # config fingerprint (check_perf.py)
      "points": n, "cycles": total-simulated-cycles,
      "serial":   {"wall_time_s": ..., "cycles_per_sec": ..., "points_per_sec": ...},
      "parallel": {"wall_time_s": ..., "cycles_per_sec": ..., "points_per_sec": ...},
      "speedup": serial / parallel,
      "identical_points": true,
      "fast_engine": {                  # engine="fast" over the same specs
        "serial": {...},                # same leg shape as above
        "speedup_vs_serial": ...,       # aggregate, load-dominated sweep
        "identical_points": true
      },
      "idle_skip": {                    # low-load point with a long drain
        "rate": ..., "drain_cycles": ...,
        "reference": {...}, "fast": {...},
        "speedup": ...,                 # event-driven skipping head-to-head
        "identical_points": true
      },
      "telemetry": {
        "disabled": {...},              # same leg shape; no observer attached
        "enabled": {...},               # TelemetryObserver recording each point
        "enabled_overhead_pct": ...,    # cycles/sec cost of recording
        "points_match_ignoring_telemetry_events": true
      },
      "profile": {                      # phase profiler (repro.profile/v1)
        "rate": ...,                    # the mid-sweep point it profiles
        "runs_per_leg": 3,              # median-of-3 on both legs
        "engines": {
          "reference": {"report": {...},
                        "off_wall_s": [a, b, c], "on_wall_s": [a, b, c],
                        "off_noise_pct": ..., "on_noise_pct": ...,
                        "enabled_overhead_pct": ...,   # median-on vs median-off
                        "identical_points": true},
          "fast": {...}                 # same shape, incl. skip counters
        }
      }
    }

    v4 adds the simulation window (``sim``) and ``tdd`` to the record so a
    history entry can be fingerprinted to its exact configuration, and
    replaces the v3 profile leg's two-off/one-on timing with median-of-3 on
    both legs: the v3 ``off_repeat_delta_pct`` reached ~12% on noisy hosts,
    swamping the ~17% overhead figure it was meant to qualify.  The medians
    feed ``enabled_overhead_pct`` and the per-leg min-to-max spread is
    reported alongside as the noise floor (``off_noise_pct``/``on_noise_pct``)
    so a reader can tell signal from scheduler jitter.

Each invocation also *appends* the full record to ``BENCH_history.jsonl``
(``repro.bench-history/v1``, one line per run) so the perf trajectory
across PRs stays diffable even though ``BENCH_sweep.json`` is overwritten.

The ``telemetry.disabled`` leg re-times the serial path with the telemetry
plumbing in place but the flag off (no observer is registered, so the hot
loop is byte-for-byte the pre-telemetry schedule); comparing it against
``serial`` bounds the disabled-mode overhead, which must stay ≤ 1%.

The two engine legs measure different regimes.  ``fast_engine`` re-runs
the full sweep — including saturated, deadlock-heavy loads where bit-exact
replication of routing randomness and SPIN recovery bounds the possible
win — so its speedup is the honest aggregate on busy networks.
``idle_skip`` times one low-load point with a ``--idle-drain``-cycle drain
tail: the regime the event-driven core exists for, where quiescent routers
cost nothing and the drained epilogue is skipped wholesale.  Identity is
enforced on both (identical :class:`SweepPoint` lists, which cover the
delivered-packet statistics, deadlock verdicts and event counters).

This file is the start of the repo's measurable perf trajectory: every PR
that touches the hot path can re-run it and diff the JSON.  Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py --jobs 4 \
        --output BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # direct invocation without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import SimulationConfig
from repro.harness.parallel import ParallelRunner
from repro.harness.runner import ExperimentSpec

BENCH_SCHEMA = "repro.bench-sweep/v4"
HISTORY_SCHEMA = "repro.bench-history/v1"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--design", default="spin_mesh")
    parser.add_argument("--pattern", default="uniform")
    parser.add_argument("--rates",
                        default="0.02,0.04,0.06,0.08,0.10,0.12,0.14,0.16",
                        help="comma-separated offered loads")
    parser.add_argument("--jobs", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="worker processes for the parallel leg")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--mesh-side", type=int, default=8)
    parser.add_argument("--tdd", type=int, default=32)
    parser.add_argument("--warmup", type=int, default=200)
    parser.add_argument("--measure", type=int, default=1000)
    parser.add_argument("--drain", type=int, default=800)
    parser.add_argument("--abort-cycles", type=int, default=1000)
    parser.add_argument("--idle-drain", type=int, default=30000,
                        help="drain cycles of the idle-skip leg (the "
                             "fast engine's event-driven regime)")
    parser.add_argument("--output", default="BENCH_sweep.json",
                        metavar="FILE.json")
    parser.add_argument("--history", default=None, metavar="FILE.jsonl",
                        help="append-only perf trajectory (default: "
                             "BENCH_history.jsonl next to --output)")
    return parser


def _leg(runner: ParallelRunner, specs):
    """Time one execution leg; returns (points, wall_seconds)."""
    started = time.perf_counter()
    results = runner.run(specs)
    wall = time.perf_counter() - started
    failures = [r for r in results if not r.ok]
    if failures:
        raise SystemExit(
            f"benchmark leg failed on {len(failures)} point(s); first: "
            f"{failures[0].error}")
    return [r.point for r in results], wall


def _stats(points, wall: float) -> dict:
    cycles = sum(point.cycles for point in points)
    return {
        "wall_time_s": round(wall, 3),
        "cycles_per_sec": round(cycles / wall, 1) if wall > 0 else None,
        "points_per_sec": round(len(points) / wall, 3) if wall > 0 else None,
    }


def _strip_telemetry_events(point):
    """A copy of a point without its ``telemetry_*`` event counters."""
    from dataclasses import replace

    events = {name: value for name, value in point.events.items()
              if not name.startswith("telemetry_")}
    return replace(point, events=events)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    rates = [float(x) for x in args.rates.split(",")]
    sim = SimulationConfig(
        warmup_cycles=args.warmup, measure_cycles=args.measure,
        drain_cycles=args.drain, deadlock_abort_cycles=args.abort_cycles)
    base = ExperimentSpec(design=args.design, pattern=args.pattern,
                          injection_rate=rates[0], seed=args.seed,
                          mesh_side=args.mesh_side, tdd=args.tdd, sim=sim)
    specs = base.curve(rates)

    serial_points, serial_wall = _leg(
        ParallelRunner(max_workers=1, backend="serial"), specs)
    parallel_points, parallel_wall = _leg(
        ParallelRunner(max_workers=args.jobs, backend="process"), specs)
    identical = serial_points == parallel_points

    # Fast-engine legs (see module docstring for what each regime means).
    from dataclasses import replace

    fast_specs = [replace(spec, engine="fast") for spec in specs]
    fast_points, fast_wall = _leg(
        ParallelRunner(max_workers=1, backend="serial"), fast_specs)
    fast_identical = fast_points == serial_points
    fast_record = {
        "serial": _stats(fast_points, fast_wall),
        "speedup_vs_serial": (round(serial_wall / fast_wall, 3)
                              if fast_wall > 0 else None),
        "identical_points": fast_identical,
    }

    idle_sim = SimulationConfig(
        warmup_cycles=args.warmup, measure_cycles=args.measure,
        drain_cycles=args.idle_drain,
        deadlock_abort_cycles=args.idle_drain + args.abort_cycles)
    idle_spec = replace(base, injection_rate=rates[0], sim=idle_sim)
    idle_runner = ParallelRunner(max_workers=1, backend="serial")
    idle_ref_points, idle_ref_wall = _leg(idle_runner, [idle_spec])
    idle_fast_points, idle_fast_wall = _leg(
        idle_runner, [replace(idle_spec, engine="fast")])
    idle_identical = idle_fast_points == idle_ref_points
    idle_record = {
        "rate": rates[0],
        "drain_cycles": args.idle_drain,
        "reference": _stats(idle_ref_points, idle_ref_wall),
        "fast": _stats(idle_fast_points, idle_fast_wall),
        "speedup": (round(idle_ref_wall / idle_fast_wall, 3)
                    if idle_fast_wall > 0 else None),
        "identical_points": idle_identical,
    }

    # Telemetry legs: disabled (plumbing present, no observer — bounds the
    # disabled-mode overhead against the serial leg) and enabled
    # (recording observer on every point — the cost of observability).
    serial_runner = ParallelRunner(max_workers=1, backend="serial")
    disabled_points, disabled_wall = _leg(serial_runner, specs)
    telemetry_specs = [replace(spec, telemetry=True) for spec in specs]
    enabled_points, enabled_wall = _leg(serial_runner, telemetry_specs)
    disabled_stats = _stats(disabled_points, disabled_wall)
    enabled_stats = _stats(enabled_points, enabled_wall)
    base_cps = _stats(serial_points, serial_wall)["cycles_per_sec"]
    disabled_cps = disabled_stats["cycles_per_sec"]
    enabled_cps = enabled_stats["cycles_per_sec"]
    telemetry_record = {
        "disabled": disabled_stats,
        "enabled": enabled_stats,
        "disabled_overhead_pct": (
            round((base_cps - disabled_cps) / base_cps * 100.0, 2)
            if base_cps else None),
        "enabled_overhead_pct": (
            round((disabled_cps - enabled_cps) / disabled_cps * 100.0, 2)
            if disabled_cps else None),
        "points_match_ignoring_telemetry_events": (
            [_strip_telemetry_events(p) for p in enabled_points]
            == serial_points),
    }

    # Profile leg: the phase profiler on one mid-sweep point, per engine.
    # Median-of-3 on both the profiler-off and profiler-on legs — a single
    # preempted run no longer swings the overhead figure — with the per-leg
    # min-to-max spread reported as the noise floor.  Every run must
    # reproduce the exact same point (profiling never perturbs simulation —
    # the schedule is only wrapped when a profiler attaches).
    from repro.sim import PhaseProfiler

    def _median3(walls):
        return sorted(walls)[1]

    def _spread_pct(walls):
        floor = min(walls)
        return (round((max(walls) - floor) / floor * 100.0, 2)
                if floor > 0 else None)

    profile_spec = specs[len(specs) // 2]
    profile_engines = {}
    profile_identical = True
    for engine_name in ("reference", "fast"):
        engine_spec = replace(profile_spec, engine=engine_name)
        run_points = []
        off_walls = []
        for _ in range(3):
            started = time.perf_counter()
            _, point = engine_spec.run()
            off_walls.append(time.perf_counter() - started)
            run_points.append(point)
        on_walls = []
        report = None
        for _ in range(3):
            profiler = PhaseProfiler()
            started = time.perf_counter()
            _, on_point = engine_spec.run(profiler=profiler)
            on_walls.append(time.perf_counter() - started)
            run_points.append(on_point)
            if report is None:
                report = profiler.report(engine_name, on_point.cycles,
                                         wall_seconds=on_walls[0])
        identical = all(point == run_points[0] for point in run_points[1:])
        profile_identical = profile_identical and identical
        off_median = _median3(off_walls)
        on_median = _median3(on_walls)
        profile_engines[engine_name] = {
            "report": report,
            "off_wall_s": [round(wall, 4) for wall in off_walls],
            "on_wall_s": [round(wall, 4) for wall in on_walls],
            "off_noise_pct": _spread_pct(off_walls),
            "on_noise_pct": _spread_pct(on_walls),
            "enabled_overhead_pct": (
                round((on_median - off_median) / off_median * 100.0, 2)
                if off_median > 0 else None),
            "identical_points": identical,
        }
    profile_record = {
        "rate": profile_spec.injection_rate,
        "runs_per_leg": 3,
        "engines": profile_engines,
    }

    record = {
        "schema": BENCH_SCHEMA,
        "design": base.design,
        "pattern": args.pattern,
        "rates": rates,
        "seed": args.seed,
        "mesh_side": args.mesh_side,
        "tdd": args.tdd,
        # The simulation window is part of the configuration fingerprint
        # check_perf.py matches history entries on — two runs with the same
        # design/rates but different cycle budgets are not comparable.
        "sim": {
            "warmup_cycles": args.warmup,
            "measure_cycles": args.measure,
            "drain_cycles": args.drain,
            "abort_cycles": args.abort_cycles,
            "idle_drain_cycles": args.idle_drain,
        },
        "jobs": args.jobs,
        # Both counts matter: cpu_count is the host's cores, the affinity
        # count is what this process may actually use (cgroup/taskset
        # limits) — conflating them mislabels parallel-leg expectations.
        "cpu_count": os.cpu_count(),
        "cpu_affinity_count": (len(os.sched_getaffinity(0))
                               if hasattr(os, "sched_getaffinity") else None),
        "points": len(serial_points),
        "cycles": sum(point.cycles for point in serial_points),
        "serial": _stats(serial_points, serial_wall),
        "parallel": _stats(parallel_points, parallel_wall),
        "speedup": (round(serial_wall / parallel_wall, 3)
                    if parallel_wall > 0 else None),
        "identical_points": identical,
        "fast_engine": fast_record,
        "idle_skip": idle_record,
        "telemetry": telemetry_record,
        "profile": profile_record,
    }
    Path(args.output).write_text(json.dumps(record, indent=2,
                                            sort_keys=True) + "\n")
    history_path = (Path(args.history) if args.history else
                    Path(args.output).with_name("BENCH_history.jsonl"))
    entry = {"schema": HISTORY_SCHEMA, "recorded_unix": int(time.time()),
             "bench": record}
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True,
                                separators=(",", ":")) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))
    print(f"appended history record to {history_path}", file=sys.stderr)
    if not identical:
        print("ERROR: serial and parallel points diverged", file=sys.stderr)
        return 1
    if not fast_identical:
        print("ERROR: fast-engine points diverged from the reference "
              "engine", file=sys.stderr)
        return 1
    if not idle_identical:
        print("ERROR: idle-skip fast-engine point diverged from the "
              "reference engine", file=sys.stderr)
        return 1
    if not telemetry_record["points_match_ignoring_telemetry_events"]:
        print("ERROR: telemetry-enabled points diverged beyond the "
              "telemetry_* event counters", file=sys.stderr)
        return 1
    if not profile_identical:
        print("ERROR: profiler-on run diverged from profiler-off runs",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
