"""Network interface controllers (NICs).

One NIC per terminal node.  A NIC owns per-vnet injection queues and pushes
queued packets into its router's injection-port VCs; on the ejection side it
accepts packets without stalls (the paper's NICs "eject flits without any
stalls") and optionally generates protocol replies for request/response
traffic (used by the PARSEC proxy workloads).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.network.packet import Packet
from repro.network.router import INJECT_PORT_BASE


class NetworkInterface:
    """Injection/ejection endpoint for one terminal node."""

    def __init__(self, node: int, router_id: int, local_index: int,
                 num_vnets: int) -> None:
        self.node = node
        self.router_id = router_id
        self.local_index = local_index
        self.inject_port = INJECT_PORT_BASE + local_index
        self.queues: List[Deque[Packet]] = [deque() for _ in range(num_vnets)]
        #: Round-robin pointer across vnet queues.
        self._next_vnet = 0
        self.network = None  # set by Network
        #: Packets created at this NIC (for stats).
        self.packets_created = 0
        #: Packets delivered to this NIC.
        self.packets_received = 0
        #: Peak injection-queue backlog observed.
        self.peak_backlog = 0

    def enqueue(self, packet: Packet) -> None:
        """Queue a freshly created packet for injection."""
        self.queues[packet.vnet].append(packet)
        self.packets_created += 1
        network = self.network
        if network is not None and network.engine_sink is not None:
            network.engine_sink.nic_backlogged(self.node)
        backlog = sum(len(q) for q in self.queues)
        if backlog > self.peak_backlog:
            self.peak_backlog = backlog

    def backlog(self) -> int:
        """Packets waiting in the injection queues."""
        return sum(len(queue) for queue in self.queues)

    def try_inject(self, now: int) -> Optional[Packet]:
        """Inject at most one queued packet into the router this cycle.

        Vnet queues are served round-robin; a packet enters the first idle
        VC (among the classes its routing algorithm permits) of this NIC's
        injection port.

        Returns:
            The injected packet, or None.
        """
        router = self.network.routers[self.router_id]
        if now <= router.port_busy[self.inject_port]:
            return None
        num_vnets = len(self.queues)
        for offset in range(num_vnets):
            vnet = (self._next_vnet + offset) % num_vnets
            queue = self.queues[vnet]
            if not queue:
                continue
            packet = queue[0]
            vc = self._pick_injection_vc(router, packet, now)
            if vc is None:
                continue
            queue.popleft()
            self._next_vnet = (vnet + 1) % num_vnets
            self.network.routing.on_inject(packet, now)
            vc.reserve(packet, now, link_latency=1,
                       router_latency=router.config.router_latency)
            router.port_busy[self.inject_port] = now + packet.length - 1
            packet.inject_cycle = now
            self.network.note_vc_reserved(router, vc)
            self.network.stats.record_injection(packet, now)
            return packet
        return None

    def _pick_injection_vc(self, router, packet: Packet, now: int):
        choices = self.network.routing.injection_vc_choices(packet)
        vcs = router.vnet_slice(self.inject_port, packet.vnet)
        for idx in choices:
            if vcs[idx].is_idle(now):
                return vcs[idx]
        return None

    def receive(self, packet: Packet, now: int) -> None:
        """Accept a delivered packet; generate a reply if one is owed."""
        self.packets_received += 1
        if packet.reply_length > 0:
            reply = Packet(
                src_node=self.node,
                dst_node=packet.src_node,
                src_router=self.router_id,
                dst_router=packet.src_router,
                length=packet.reply_length,
                vnet=min(packet.vnet + 1, len(self.queues) - 1),
                create_cycle=now,
            )
            reply.measured = packet.measured
            self.enqueue(reply)

    def __repr__(self) -> str:
        return f"NIC(node={self.node}, router={self.router_id})"
