"""Static Bubble-style deadlock recovery baseline (Ramrakhyani & Krishna,
HPCA 2017), as compared against in the paper's Fig. 7 and Fig. 10.

The defining property the paper highlights: "one of the VCs in Static Bubble
is reserved for deadlock recovery and cannot be used during normal
operation".  This implementation reproduces that contract on our substrate:

* Normal operation routes fully adaptively over VCs ``0 .. V-2``.
* VC ``V-1`` at every port is the reserved recovery layer.  It is used only
  by packets that a per-router timeout has switched to *escape mode*; escape
  packets drain through the reserved layer under dimension-order (XY)
  routing, whose CDG is acyclic, so a recovery always completes and frees a
  buffer in any deadlocked ring.

This abstracts the original's bubble-placement machinery (which exists to
bound where recovery buffers are needed) while preserving its performance
characteristics — the reserved buffer is dead capacity during normal
operation, which is exactly the cost SPIN's comparison targets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.network.packet import Packet
from repro.network.router import is_ejection_port
from repro.routing.adaptive import MinimalAdaptiveRouting

#: Packet route_state key marking escape (recovery) mode.
_ESCAPE = "static_bubble_escape"


class StaticBubbleRouting(MinimalAdaptiveRouting):
    """Fully adaptive over VCs 0..V-2; reserved VC V-1 drains via XY."""

    name = "StaticBubble"
    theory = "FlowCtrl"

    def _setup(self) -> None:
        self._require_vcs(2)
        if not hasattr(self.topology, "directions_toward"):
            raise ConfigurationError("StaticBubble baseline needs a mesh")

    def _xy_port(self, router, packet: Packet) -> int:
        from repro.topology.mesh import EAST, WEST

        productive = self.topology.directions_toward(
            router.id, packet.routing_target)
        x_dirs = [d for d in productive if d in (EAST, WEST)]
        return (x_dirs or productive)[0]

    def candidate_outports(self, router, packet: Packet) -> Sequence[int]:
        if packet.route_state.get(_ESCAPE):
            return (self._xy_port(router, packet),)
        return super().candidate_outports(router, packet)

    def vc_choices(self, packet: Packet, router, outport: int) -> Sequence[int]:
        reserved = self.network.config.vcs_per_vnet - 1
        if packet.route_state.get(_ESCAPE):
            return (reserved,)
        return range(reserved)

    def injection_vc_choices(self, packet: Packet) -> Sequence[int]:
        return range(self.network.config.vcs_per_vnet - 1)

    def wait_targets(self, router, packet: Packet, now: int):
        """Includes the escape layer: a timeout can always rescue a packet.

        This makes the ground-truth oracle agree that the scheme is
        deadlock-free (a blocked packet's wait set always contains the
        reserved XY chain, which drains).
        """
        targets = super().wait_targets(router, packet, now)
        if targets and not packet.route_state.get(_ESCAPE):
            escape_port = self._xy_port(router, packet)
            neighbor, dst_port = router.out_neighbors[escape_port]
            reserved = self.network.config.vcs_per_vnet - 1
            targets.append(
                (escape_port,
                 [neighbor.vnet_slice(dst_port, packet.vnet)[reserved]]))
        return targets


class StaticBubbleControlPlane:
    """Per-router timeout that switches stuck packets into escape mode."""

    def __init__(self, tdd: int = 128) -> None:
        self.tdd = tdd
        self.network = None
        self._pointers: List[Optional[Tuple[int, int]]] = []
        self._pointed_uid: List[Optional[int]] = []
        self._deadlines: List[int] = []

    def bind(self, network) -> None:
        if not isinstance(network.routing, StaticBubbleRouting):
            raise ConfigurationError(
                "StaticBubbleControlPlane requires StaticBubbleRouting")
        self.network = network
        count = len(network.routers)
        self._pointers = [None] * count
        self._pointed_uid = [None] * count
        self._deadlines = [0] * count

    def phase_control(self, cycle: int) -> None:
        for router in self.network.routers:
            if router.active_vcs == 0:
                self._pointers[router.id] = None
                continue
            self._tick_router(router, cycle)

    def _tick_router(self, router, now: int) -> None:
        rid = router.id
        pointer = self._pointers[rid]
        vc = self._vc_at(router, pointer)
        if (
            vc is None or vc.packet is None
            or vc.packet.uid != self._pointed_uid[rid]
        ):
            self._advance(router, now)
            return
        if now < self._deadlines[rid]:
            return
        packet = vc.packet
        request = packet.current_request
        if (
            vc.fully_arrived(now)
            and request is not None
            and not is_ejection_port(request)
            and not packet.route_state.get(_ESCAPE)
        ):
            packet.route_state[_ESCAPE] = True
            self.network.stats.count("static_bubble_recoveries")
        self._advance(router, now)

    def _vc_at(self, router, pointer):
        if pointer is None:
            return None
        inport, index = pointer
        vcs = router.inports.get(inport)
        if vcs is None or index >= len(vcs):
            return None
        return vcs[index]

    def _advance(self, router, now: int) -> None:
        """Point at the next occupied network-input VC, round-robin."""
        rid = router.id
        vcs = [vc for port in sorted(router.inports)
               for vc in router.inports[port]]
        if not vcs:
            self._pointers[rid] = None
            return
        start = 0
        pointer = self._pointers[rid]
        if pointer is not None:
            for i, vc in enumerate(vcs):
                if (vc.inport, vc.index) == pointer:
                    start = i + 1
                    break
        for offset in range(len(vcs)):
            vc = vcs[(start + offset) % len(vcs)]
            if vc.packet is not None:
                self._pointers[rid] = (vc.inport, vc.index)
                self._pointed_uid[rid] = vc.packet.uid
                self._deadlines[rid] = now + self.tdd
                return
        self._pointers[rid] = None
        self._pointed_uid[rid] = None
