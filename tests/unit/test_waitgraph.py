"""Unit tests for the ground-truth deadlock oracle."""

from repro.config import SpinParams
from repro.deadlock.waitgraph import (
    blocked_packets,
    deadlocked_vc_chain,
    find_deadlocked_packets,
    has_deadlock,
)
from repro.sim.engine import Simulator

from tests.conftest import craft_ring_deadlock, make_mesh_network, make_ring_network


class TestEmptyAndLightStates:
    def test_empty_network_has_no_deadlock(self):
        network = make_mesh_network()
        assert not has_deadlock(network, 0)
        assert find_deadlocked_packets(network, 0) == set()

    def test_flowing_traffic_is_not_deadlocked(self):
        from repro.traffic.generator import SyntheticTraffic
        from repro.traffic.patterns import make_pattern

        network = make_mesh_network(side=4, vcs=2)
        network.stats.open_window(0, None)
        traffic = SyntheticTraffic(network, make_pattern("uniform", 16), 0.05,
                                   seed=3)
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        for _ in range(10):
            sim.run(50)
            assert not has_deadlock(network, sim.cycle)


class TestCraftedRing:
    def test_crafted_ring_is_deadlocked(self):
        network = make_ring_network(m=6)
        packets = craft_ring_deadlock(network)
        # Let route computation record each packet's request once.
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        deadlocked = find_deadlocked_packets(network, 2)
        assert deadlocked == {p.uid for p in packets}

    def test_chain_reports_every_member_vc(self):
        network = make_ring_network(m=5)
        craft_ring_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        chain = deadlocked_vc_chain(network, 2)
        assert len(chain) == 5

    def test_breaking_one_dependency_unblocks_all(self):
        network = make_ring_network(m=6)
        packets = craft_ring_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        assert has_deadlock(network, 2)
        # Remove one packet: the ring now has a free buffer.
        router, inport, vc = next(iter(
            (r, i, v) for r, i, v in network.occupied_vcs()
            if v.packet is packets[0]))
        vc.release(2)
        vc.free_at = 0
        network.note_vc_released(router)
        assert not has_deadlock(network, 3)


class TestBlockedPackets:
    def test_arriving_packets_not_blocked(self):
        network = make_ring_network(m=5)
        craft_ring_deadlock(network)
        # Tamper: pretend one packet's tail has not arrived yet.
        _, _, vc = next(iter(network.occupied_vcs()))
        vc.tail_arrival = 10_000
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        keys = {key for key, _, _ in blocked_packets(network, 2)}
        assert (vc.router, vc.inport, vc.index) not in keys
        # And the incomplete ring is therefore not a deadlock.
        assert not has_deadlock(network, 2)

    def test_spin_recovery_clears_oracle(self):
        network = make_ring_network(m=6, spin=SpinParams(tdd=8))
        craft_ring_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        assert has_deadlock(network, sim.cycle)
        sim.run(600)
        assert not has_deadlock(network, sim.cycle)
        assert network.stats.events.get("spins", 0) >= 1
