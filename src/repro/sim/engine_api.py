"""The pluggable engine API.

A *simulator engine* owns the cycle loop: it advances registered components
through the per-cycle phases and sequences read-only observers after them.
Two implementations ship with the toolkit:

* ``reference`` — :class:`repro.sim.engine.Simulator`, the straightforward
  per-object loop every other subsystem was validated against.
* ``fast`` — :class:`repro.sim.fastcore.FastSimulator`, an event-driven
  datapath that skips quiescent routers, idle control planes and fully
  drained stretches of simulated time while producing *bit-identical*
  results (it shares all authoritative state with the reference engine and
  falls back to the reference schedule for configurations outside its
  proven envelope).

Selection precedence (highest wins):

1. the ``ExperimentSpec.engine`` field (or an explicit ``engine=`` argument),
2. the CLI ``--engine`` flag (the CLI writes it into the spec),
3. the ``REPRO_ENGINE`` environment variable,
4. the default, ``reference``.

Engines satisfy the :class:`SimulatorEngine` protocol; code that needs a
loop should call :func:`create_engine` instead of constructing
``Simulator()`` directly (see :func:`build_simulation_loop` for the
deprecation shim covering old call sites).
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, List, Optional, Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator

#: Environment variable consulted when neither a spec nor the CLI names one.
ENGINE_ENV_VAR = "REPRO_ENGINE"
#: Engine used when nothing selects one explicitly.
DEFAULT_ENGINE = "reference"


@runtime_checkable
class SimulatorEngine(Protocol):
    """The contract every cycle-loop implementation satisfies.

    Attributes:
        name: Registry name of the implementation (``reference``/``fast``).
        cycle: The current cycle counter.
    """

    name: str
    cycle: int

    def register(self, component: object) -> None:
        """Add a component to the cycle loop (in registration order)."""

    def register_observer(self, observer: object) -> None:
        """Add a read-only observer sequenced after every component."""

    def step(self) -> None:
        """Simulate exactly one cycle."""

    def run(self, cycles: int) -> None:
        """Simulate the given number of cycles."""

    def run_until(self, predicate, max_cycles: int) -> bool:
        """Step until ``predicate()`` is true or ``max_cycles`` elapse."""


def _make_reference() -> Simulator:
    return Simulator()


def _make_fast():
    # Imported lazily: the fast core pulls in the network/core layers, which
    # must not become import-time dependencies of repro.sim.
    from repro.sim.fastcore import FastSimulator

    return FastSimulator()


_FACTORIES: Dict[str, Callable[[], "SimulatorEngine"]] = {
    "reference": _make_reference,
    "fast": _make_fast,
}


def available_engines() -> List[str]:
    """Registered engine names, ascending."""
    return sorted(_FACTORIES)


def resolve_engine_name(name: Optional[str] = None,
                        cli: Optional[str] = None,
                        env: Optional[str] = None) -> str:
    """Resolve an engine name through the selection precedence.

    Args:
        name: Spec-level selection (``ExperimentSpec.engine``); empty/None
            means unset.
        cli: CLI-flag selection; empty/None means unset.
        env: Environment override; defaults to ``$REPRO_ENGINE``.

    Returns:
        A validated engine name.

    Raises:
        ConfigurationError: If the winning name is not registered.
    """
    if env is None:
        env = os.environ.get(ENGINE_ENV_VAR) or None
    resolved = name or cli or env or DEFAULT_ENGINE
    if resolved not in _FACTORIES:
        raise ConfigurationError(
            f"unknown engine {resolved!r} "
            f"(available: {', '.join(available_engines())})",
            engine=resolved)
    return resolved


def create_engine(name: Optional[str] = None) -> "SimulatorEngine":
    """Instantiate an engine by name (resolving the selection precedence)."""
    return _FACTORIES[resolve_engine_name(name)]()


def build_simulation_loop(network, traffic=None, injector=None,
                          engine: Optional[str] = None) -> "SimulatorEngine":
    """Deprecated adapter for call sites that wired ``Network`` + ``Simulator``
    by hand.

    Registers the pieces in the canonical order (traffic, injector, network)
    on a freshly created engine.  New code should construct an
    :class:`repro.harness.runner.ExperimentSpec` (which owns engine
    selection) or call :func:`create_engine` and register components itself.
    """
    warnings.warn(
        "build_simulation_loop() is a migration shim; construct an "
        "ExperimentSpec(engine=...) or call repro.sim.create_engine() "
        "and register components explicitly",
        DeprecationWarning, stacklevel=2)
    simulator = create_engine(engine)
    if traffic is not None:
        simulator.register(traffic)
    if injector is not None:
        injector.bind(network)
        simulator.register(injector)
    simulator.register(network)
    return simulator
