"""The invariant oracle in raise mode across every topology/routing combo.

Acceptance gate for the oracle: a *correct* design must survive a full
oracle-enabled run with zero violations on every topology and routing
family in the repo — mesh and dragonfly Table III designs, torus under
bubble flow control, rings, irregular (faulty) meshes with up*/down*
routing, and crafted-deadlock SPIN recovery including live spins,
probes, and frozen VCs.  ``verify=True`` attaches the oracle in raise
mode, so merely completing the run asserts all invariants held.
"""

import pytest

from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.deadlock.waitgraph import has_deadlock
from repro.harness.runner import run_design
from repro.network.network import Network
from repro.sim.engine import Simulator
from repro.topology.torus import TorusTopology
from repro.traffic.generator import SyntheticTraffic
from repro.traffic.patterns import make_pattern
from repro.verify.oracle import InvariantOracle, OracleConfig

from tests.conftest import (
    craft_ring_deadlock,
    craft_square_deadlock,
    make_mesh_network,
    make_ring_network,
)

SHORT = SimulationConfig(warmup_cycles=150, measure_cycles=700,
                         drain_cycles=2000, deadlock_abort_cycles=1200)


def _strict_run(network, traffic=None, cycles=2000):
    """Simulate under a raise-mode oracle; returns (simulator, oracle)."""
    simulator = Simulator()
    if traffic is not None:
        simulator.register(traffic)
    simulator.register(network)
    oracle = InvariantOracle(network, OracleConfig(mode="raise"))
    oracle.attach(simulator)
    simulator.run(cycles)
    return simulator, oracle


# ----------------------------------------------------------------------
# Table III designs: every routing family on mesh and dragonfly
# ----------------------------------------------------------------------
class TestMeshDesignsUnderOracle:
    @pytest.mark.parametrize("design", [
        "mesh:westfirst-2vc",           # turn-model avoidance
        "mesh:escapevc-2vc",            # escape-VC avoidance
        "mesh:staticbubble-2vc",        # localized-recovery baseline
        "mesh:minadaptive-spin-2vc",    # SPIN recovery
        "mesh:favors-min-spin-1vc",     # non-minimal adaptive + SPIN
        "mesh:minadaptive-nospin-3vc",  # plain adaptive, no recovery
    ])
    def test_uniform_load_zero_violations(self, design):
        network, point = run_design(design, "uniform", 0.12, SHORT,
                                    mesh_side=4, tdd=32, verify=True)
        assert not point.wedged
        assert point.invariant_violations == 0
        assert network.stats.packets_delivered == network.stats.packets_created

    @pytest.mark.parametrize("pattern", ["transpose", "tornado"])
    def test_adversarial_patterns_with_spin(self, pattern):
        network, point = run_design("mesh:minadaptive-spin-1vc", pattern,
                                    0.10, SHORT, mesh_side=4, tdd=24,
                                    verify=True)
        assert not point.wedged
        assert point.invariant_violations == 0


class TestDragonflyDesignsUnderOracle:
    @pytest.mark.parametrize("design", [
        "dfly:ugal-dally-3vc",          # Dally VC-discipline avoidance
        "dfly:ugal-spin-3vc",           # UGAL + SPIN
        "dfly:minimal-spin-1vc",        # minimal + SPIN, 1 VC
    ])
    def test_uniform_load_zero_violations(self, design):
        network, point = run_design(design, "uniform", 0.08, SHORT,
                                    dragonfly=(2, 4, 2), tdd=32,
                                    verify=True)
        assert not point.wedged
        assert point.invariant_violations == 0

    def test_live_spin_recovery_under_strict_oracle(self):
        """Tornado on a 1-VC dragonfly deadlocks; SPIN recovery — probes,
        moves, frozen VCs, the spin itself — must not trip the oracle."""
        network, point = run_design("dfly:favors-nmin-spin-1vc", "tornado",
                                    0.30, SHORT, dragonfly=(2, 4, 2),
                                    tdd=32, verify=True)
        assert not point.wedged
        assert point.events.get("spins", 0) >= 1
        assert point.invariant_violations == 0


# ----------------------------------------------------------------------
# Torus: wraparound datapath under bubble flow control
# ----------------------------------------------------------------------
class TestTorusUnderOracle:
    def test_bubble_torus_zero_violations(self):
        from repro.deadlock.bubble import BubbleFlowControlRouting

        network = Network(
            topology=TorusTopology(4, 4),
            config=NetworkConfig(vcs_per_vnet=1),
            routing=BubbleFlowControlRouting(5),
            spin=None,
            seed=5,
        )
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16, 4), 0.20, seed=5,
            stop_at=1200)
        simulator, _ = _strict_run(network, traffic, cycles=2400)
        stats = network.stats
        assert stats.packets_delivered == stats.packets_created
        assert stats.packets_delivered > 0
        assert not has_deadlock(network, simulator.cycle)

    def test_spin_torus_zero_violations(self):
        from repro.routing.adaptive import MinimalAdaptiveRouting

        network = Network(
            topology=TorusTopology(4, 4),
            config=NetworkConfig(vcs_per_vnet=1),
            routing=MinimalAdaptiveRouting(9),
            spin=SpinParams(tdd=32),
            seed=9,
        )
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16, 4), 0.15, seed=9,
            stop_at=1200)
        _strict_run(network, traffic, cycles=3000)
        stats = network.stats
        assert stats.packets_delivered == stats.packets_created


# ----------------------------------------------------------------------
# Ring and irregular topologies
# ----------------------------------------------------------------------
class TestOtherTopologiesUnderOracle:
    def test_ring_crafted_deadlock_spin_recovers(self):
        network = make_ring_network(m=6, spin=SpinParams(tdd=16))
        craft_ring_deadlock(network)
        assert has_deadlock(network, 0)
        simulator, _ = _strict_run(network, cycles=2000)
        assert not has_deadlock(network, simulator.cycle)
        assert network.is_drained()
        assert network.stats.events.get("spins", 0) >= 1

    def test_faulty_mesh_updown_zero_violations(self):
        from repro.routing.table import UpDownRouting
        from repro.topology.irregular import faulty_mesh

        topology = faulty_mesh(4, 4, num_failed_links=3)
        network = Network(
            topology=topology,
            config=NetworkConfig(vcs_per_vnet=2),
            routing=UpDownRouting(seed=2),
            spin=None,
            seed=2,
        )
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", topology.num_nodes, 4),
            0.08, seed=2, stop_at=1000)
        _strict_run(network, traffic, cycles=2200)
        stats = network.stats
        assert stats.packets_delivered == stats.packets_created


# ----------------------------------------------------------------------
# Crafted mesh deadlock: full SPIN recovery path under the oracle
# ----------------------------------------------------------------------
class TestCraftedRecoveryUnderOracle:
    def test_square_deadlock_recovery_zero_violations(self):
        network = make_mesh_network(spin=SpinParams(tdd=16))
        packets = craft_square_deadlock(network)
        assert has_deadlock(network, 0)
        simulator, oracle = _strict_run(network, cycles=1500)
        assert not has_deadlock(network, simulator.cycle)
        assert network.is_drained()
        assert network.stats.events.get("spins", 0) >= 1
        assert network.stats.packets_delivered == len(packets)
        # Raise-mode oracle that completed the run saw no violations.
        assert oracle.violation_count == 0

    def test_deadlock_persistence_bound_not_tripped_by_recovery(self):
        """SPIN resolves the crafted deadlock well within the oracle's
        persistence bound, so even an aggressive check interval stays
        silent."""
        network = make_mesh_network(spin=SpinParams(tdd=16))
        craft_square_deadlock(network)
        simulator = Simulator()
        simulator.register(network)
        oracle = InvariantOracle(
            network, OracleConfig(mode="raise", deadlock_check_interval=8))
        oracle.attach(simulator)
        simulator.run(1500)
        assert oracle.violation_count == 0
        assert not has_deadlock(network, simulator.cycle)
