"""The struct-of-arrays allocation core: compilation, mirrors, fallback.

:class:`repro.sim.fastcore.soa.SoaCore` compiles the network into flat
integer-indexed tables and advances the hot phases over them, writing the
authoritative objects directly.  These tests pin the three load-bearing
properties of that design:

* **compilation** — the static tables (global VC id space, arbitration
  keys, downstream/injection rows) are a faithful index of the object
  graph;
* **mirror round-trip** — after arbitrary simulated prefixes (including
  mid-flight, deadlocked and recovering states) every dynamic mirror still
  agrees with the objects, ``resync()`` rebuilds from the objects alone,
  and ``verify_against_objects()`` actually detects planted skew;
* **fail-closed fallback** — any configuration outside the routing/plane
  whitelist compiles to the pure reference schedule, bit for bit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.harness.runner import ExperimentSpec
from repro.network.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim import create_engine
from repro.topology.mesh import MeshTopology
from repro.traffic.generator import SyntheticTraffic
from repro.traffic.patterns import make_pattern


def _fast_sim(side=4, vcs=2, rate=0.15, seed=3, tdd=16, routing=None):
    """A fast-engine loop over a small mesh with uniform traffic."""
    network = Network(MeshTopology(side, side),
                      NetworkConfig(vcs_per_vnet=vcs),
                      routing or MinimalAdaptiveRouting(seed),
                      spin=SpinParams(tdd=tdd), seed=seed)
    pattern = make_pattern("uniform", network.topology.num_nodes, seed)
    traffic = SyntheticTraffic(network, pattern, rate, seed=seed)
    simulator = create_engine("fast")
    simulator.register(traffic)
    simulator.register(network)
    return simulator, network


class TestCompilation:
    def test_global_vid_space_covers_every_vc_in_scan_order(self):
        simulator, network = _fast_sim()
        simulator.run(1)
        core = simulator._core
        assert core is not None and simulator._fast_ok

        expected = []
        for router in network.routers:
            for inport, vcs in router.all_inports():
                expected.extend(vcs)
        assert core.vc_obj == expected
        assert len(core.vid_of) == len(expected)
        for vid, vc in enumerate(core.vc_obj):
            assert core.vid_of[id(vc)] == vid
            assert core.vc_inport[vid] == vc.inport
            # Arbitration key orders (inport, index) lexicographically.
            assert core.vc_arbkey[vid] == vc.inport * 64 + vc.index

    def test_router_slices_partition_the_vid_space(self):
        simulator, network = _fast_sim()
        simulator.run(1)
        core = simulator._core
        assert core.r_lo[0] == 0
        assert core.r_lo[-1] == len(core.vc_obj)
        for rid, router in enumerate(network.routers):
            lo, hi = core.r_lo[rid], core.r_lo[rid + 1]
            assert all(vc.router == rid for vc in core.vc_obj[lo:hi])

    def test_downstream_rows_mirror_the_link_graph(self):
        simulator, network = _fast_sim()
        simulator.run(1)
        core = simulator._core
        for router in network.routers:
            for outport, (neighbor, dst_port) in \
                    router.out_neighbors.items():
                entry = core.outinfo[(router.id, outport)]
                assert entry[0] == outport
                assert entry[1] is router.out_links[outport]
                assert entry[2] == neighbor.id
                for vnet, (dvcs, dvids) in enumerate(zip(entry[3],
                                                         entry[4])):
                    assert list(dvcs) \
                        == list(neighbor.vnet_slice(dst_port, vnet))
                    assert [core.vid_of[id(dvc)] for dvc in dvcs] \
                        == list(dvids)

    def test_injection_tables_mirror_the_nics(self):
        simulator, network = _fast_sim()
        simulator.run(1)
        core = simulator._core
        for nic in network.nics:
            assert core.inj_port[nic.node] == nic.inject_port
            assert core.inj_rid[nic.node] == nic.router_id
            router = network.routers[nic.router_id]
            for vnet, row in enumerate(core.inj_vcs[nic.node]):
                assert list(row) \
                    == list(router.vnet_slice(nic.inject_port, vnet))


class TestMirrorRoundTrip:
    def test_mirrors_agree_after_a_busy_prefix(self):
        simulator, _ = _fast_sim(rate=0.30)
        for checkpoint in (7, 50, 143, 400):
            simulator.run(checkpoint - simulator.cycle)
            assert simulator._core.verify_against_objects() == []

    def test_resync_rebuilds_from_objects_alone(self):
        simulator, _ = _fast_sim(rate=0.30)
        simulator.run(200)
        core = simulator._core
        before = core.resyncs
        core.resync()
        assert core.resyncs == before + 1
        assert core.verify_against_objects() == []

    def test_verifier_detects_planted_occupancy_skew(self):
        simulator, _ = _fast_sim(rate=0.30)
        simulator.run(200)
        core = simulator._core
        occupied = next(vid for vid in range(len(core.vc_obj))
                        if core.vc_pkt[vid])
        core.vc_pkt[occupied] = 0
        mismatches = core.verify_against_objects()
        assert mismatches, "planted mirror skew went undetected"
        core.resync()
        assert core.verify_against_objects() == []

    @settings(max_examples=10, deadline=None)
    @given(
        side=st.integers(min_value=3, max_value=5),
        vcs=st.integers(min_value=1, max_value=2),
        rate=st.sampled_from([0.05, 0.15, 0.30]),
        seed=st.integers(min_value=0, max_value=2 ** 16),
        cycles=st.integers(min_value=1, max_value=300),
    )
    def test_random_designs_round_trip(self, side, vcs, rate, seed,
                                       cycles):
        """After any prefix on a random design the compiled tables and the
        object graph describe the same machine — the invariant every
        inlined decision depends on."""
        simulator, _ = _fast_sim(side=side, vcs=vcs, rate=rate, seed=seed)
        simulator.run(cycles)
        core = simulator._core
        assert core.verify_against_objects() == []
        core.resync()
        assert core.verify_against_objects() == []


class TestFailClosedFallback:
    def test_routing_subclass_falls_back(self):
        class TweakedRouting(MinimalAdaptiveRouting):
            """Overrides nothing — still outside the exact-type whitelist."""

        simulator, network = _fast_sim(routing=TweakedRouting(3))
        simulator.run(50)
        assert not simulator._fast_ok
        assert simulator._core is None
        assert getattr(network, "engine_sink", None) is None

    def test_instance_monkeypatch_falls_back(self):
        routing = MinimalAdaptiveRouting(3)
        routing.select = lambda *args, **kwargs: None
        simulator, _ = _fast_sim(routing=routing)
        simulator.run(50)
        assert not simulator._fast_ok

    def test_fallback_is_bit_identical_to_reference(self):
        sim_config = SimulationConfig(
            warmup_cycles=30, measure_cycles=150, drain_cycles=120,
            deadlock_abort_cycles=300)
        base = ExperimentSpec(design="mesh:escapevc-2vc",
                              pattern="uniform", injection_rate=0.10,
                              seed=5, mesh_side=4, tdd=16, sim=sim_config)
        from dataclasses import replace

        _, reference = replace(base, engine="reference").run()
        _, fast = replace(base, engine="fast").run()
        assert fast.to_dict() == reference.to_dict()


@pytest.mark.parametrize("routing_factory", [
    MinimalAdaptiveRouting,
    pytest.param(None, id="DimensionOrderRouting"),
])
def test_whitelisted_routings_compile(routing_factory):
    """The two stock whitelisted routings actually take the SoA path."""
    if routing_factory is None:
        from repro.routing.dor import DimensionOrderRouting
        routing_factory = DimensionOrderRouting
    simulator, _ = _fast_sim(routing=routing_factory(3))
    simulator.run(50)
    assert simulator._fast_ok
    assert simulator._core is not None
