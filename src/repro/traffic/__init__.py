"""Traffic patterns, generators and trace replay."""

from repro.traffic.patterns import (
    BitComplement,
    BitReverse,
    BitRotation,
    Neighbor,
    Shuffle,
    Tornado,
    TrafficPattern,
    Transpose,
    UniformRandom,
    make_pattern,
)
from repro.traffic.generator import SyntheticTraffic, PacketMix
from repro.traffic.parsec import ParsecWorkload, PARSEC_PROFILES
from repro.traffic.trace import TraceRecord, TraceTraffic, load_trace, save_trace

__all__ = [
    "TrafficPattern",
    "UniformRandom",
    "Transpose",
    "Tornado",
    "BitComplement",
    "BitReverse",
    "BitRotation",
    "Shuffle",
    "Neighbor",
    "make_pattern",
    "SyntheticTraffic",
    "PacketMix",
    "ParsecWorkload",
    "PARSEC_PROFILES",
    "TraceRecord",
    "TraceTraffic",
    "load_trace",
    "save_trace",
]
