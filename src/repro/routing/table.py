"""Up*/down* routing for irregular topologies.

The classic Dally-theory solution for arbitrary graphs (used by Autonet and
most NoC reconfiguration schemes such as ARIADNE): orient every channel
up/down along a BFS spanning tree (the "up" end is closer to the root;
ties break toward the smaller router id) and forbid the down->up turn.
Every legal path is a sequence of up hops followed by down hops, which makes
the channel dependency graph acyclic at the cost of longer, less diverse
routes — precisely the restriction SPIN removes on irregular networks.

Routing is adaptive among all *shortest legal* next hops, computed from a
precomputed distance table over the (router, may-still-go-up) state graph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx

from repro.errors import RoutingError
from repro.network.packet import Packet
from repro.routing.base import RoutingAlgorithm

#: Packet route_state key: set once the packet has taken a down hop.
_WENT_DOWN = "updown_went_down"


class UpDownRouting(RoutingAlgorithm):
    """Adaptive shortest-path up*/down* routing on any connected topology."""

    name = "UpDown"
    minimal = False  # legal paths may exceed the unrestricted minimum
    max_misroutes = 0
    theory = "Dally"

    def __init__(self, seed: int = 0, root: int = 0) -> None:
        super().__init__(seed)
        self.root = root
        #: (router, port) -> True if the hop goes "up" (toward the root).
        self._is_up_hop: Dict[Tuple[int, int], bool] = {}
        #: target -> distance array indexed by router * 2 + phase
        #: (phase 0 = may still go up, 1 = down only).
        self._distance: Dict[int, List[int]] = {}
        #: Directed hops (router, port) currently failed at runtime.
        self._dead_hops: Set[Tuple[int, int]] = set()
        self._infinity = 0

    def _setup(self) -> None:
        topology = self.topology
        graph = nx.Graph()
        graph.add_nodes_from(range(topology.num_routers))
        for link in topology.links():
            graph.add_edge(link.src, link.dst)
        depth = nx.single_source_shortest_path_length(graph, self.root)

        def rank(router: int) -> Tuple[int, int]:
            return depth[router], router

        for router_id in range(topology.num_routers):
            for port, (neighbor, _, _) in topology.neighbors(router_id).items():
                self._is_up_hop[(router_id, port)] = rank(neighbor) < rank(router_id)
        self._distance = {}
        self._dead_hops = set()
        self._precompute_distances(strict=True)

    def _precompute_distances(self, strict: bool) -> None:
        """BFS per target over the (router, phase) state graph, reversed.

        ``distance[target][router * 2 + phase]`` is the length of the
        shortest legal path from ``router`` (in the given phase) to
        ``target``; unreachable states hold a large sentinel.

        Hops in ``_dead_hops`` (runtime link failures) are excluded.  With
        ``strict`` (initial setup on a healthy fabric) unreachability is an
        error; during a fault-driven recompute it merely strands the
        affected (router, target) pairs — their packets wait for a link_up
        or are reclaimed by the fault injector.
        """
        topology = self.topology
        num = topology.num_routers
        infinity = num * 4 + 1
        self._infinity = infinity
        dead = self._dead_hops
        # Reverse edges: to relax (r, phase) we need predecessors (s, phase')
        # such that the hop s->r is legal from phase'.
        predecessors: List[List[int]] = [[] for _ in range(num * 2)]
        for router_id in range(num):
            for port, (neighbor, _, _) in topology.neighbors(router_id).items():
                if (router_id, port) in dead:
                    continue
                if self._is_up_hop[(router_id, port)]:
                    # up hop: only legal from phase 0, stays in phase 0
                    predecessors[neighbor * 2 + 0].append(router_id * 2 + 0)
                else:
                    # down hop: legal from both phases, lands in phase 1
                    predecessors[neighbor * 2 + 1].append(router_id * 2 + 0)
                    predecessors[neighbor * 2 + 1].append(router_id * 2 + 1)
        for target in range(num):
            dist = [infinity] * (num * 2)
            queue = deque()
            for phase in (0, 1):
                dist[target * 2 + phase] = 0
                queue.append(target * 2 + phase)
            while queue:
                state = queue.popleft()
                for pred in predecessors[state]:
                    if dist[pred] > dist[state] + 1:
                        dist[pred] = dist[state] + 1
                        queue.append(pred)
            if strict:
                for router_id in range(num):
                    if dist[router_id * 2] >= infinity:
                        raise RoutingError(
                            f"up*/down* cannot reach {target} from {router_id}")
            self._distance[target] = dist

    def on_link_state_change(self, link, up: bool, now: int) -> None:
        """Recompute the legal-path distance table around a failed link.

        The up/down orientation is kept (re-orienting the spanning tree at
        runtime is a reconfiguration protocol of its own); only the distance
        relaxation changes.  Pairs left without a legal up*/down* path are
        stranded until the link revives.
        """
        hop = (link.src, link.src_port)
        if up:
            self._dead_hops.discard(hop)
        else:
            self._dead_hops.add(hop)
        self._precompute_distances(strict=False)
        if self.network is not None:
            self.network.stats.count("routing_recomputes")

    # ------------------------------------------------------------------
    # Routing interface
    # ------------------------------------------------------------------
    def on_inject(self, packet: Packet, now: int) -> None:
        packet.route_state[_WENT_DOWN] = False

    def candidate_outports(self, router, packet: Packet) -> Sequence[int]:
        phase = 1 if packet.route_state.get(_WENT_DOWN) else 0
        dist = self._distance[packet.routing_target]
        here = dist[router.id * 2 + phase]
        if here >= self._infinity:
            # No legal up*/down* path from here under the current fault set:
            # the packet is stranded (base-class dead-link filter counts it).
            return ()
        dead = self._dead_hops
        candidates = []
        for port in sorted(router.out_neighbors):
            neighbor, _ = router.out_neighbors[port]
            if dead and (router.id, port) in dead:
                continue
            up = self._is_up_hop[(router.id, port)]
            if up and phase == 1:
                continue
            next_phase = 0 if up else 1
            if dist[neighbor.id * 2 + next_phase] == here - 1:
                candidates.append(port)
        return tuple(candidates)

    def on_hop(self, packet: Packet, router, outport: int) -> None:
        if not self._is_up_hop[(router.id, outport)]:
            packet.route_state[_WENT_DOWN] = True

    def legal_path_length(self, src_router: int, dst_router: int) -> int:
        """Length of the shortest legal up*/down* path (for tests/reports)."""
        return self._distance[dst_router][src_router * 2 + 0]
