"""Fault event and schedule datatypes.

A :class:`FaultSchedule` is a pure description — no simulator state — of two
kinds of faults:

* **Timed events** (:class:`LinkStateEvent`, :class:`RouterStateEvent`)
  fire once, at an absolute cycle: a channel or a whole router goes down
  (fail-stop) or comes back up.
* **SM fault policies** (:class:`SmFaultPolicy`) apply continuously to
  SPIN special messages crossing links: each matching SM is dropped,
  delayed, or corrupted, either probabilistically (``probability``) or for
  a deterministic budget of ``count`` messages.

Schedules validate themselves on construction so malformed fault programs
fail loudly before any cycles are simulated (:class:`FaultInjectionError`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import FaultInjectionError

#: SM fault actions.
SM_ACTIONS = ("drop", "delay", "corrupt")
#: SM kinds a policy may be scoped to (None = all kinds).
SM_KINDS = ("probe", "move", "probe_move", "kill_move")


@dataclass(frozen=True)
class LinkStateEvent:
    """Take one bidirectional channel down (or back up) at a cycle.

    Attributes:
        cycle: Absolute cycle the event fires (during phase_control).
        a, b: Router ids of the channel's endpoints (undirected; both
            directed links change state).
        up: New state — False for ``link_down``, True for ``link_up``.
    """

    cycle: int
    a: int
    b: int
    up: bool = False

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise FaultInjectionError("event cycle must be >= 0",
                                      event=self.describe())
        if self.a < 0 or self.b < 0 or self.a == self.b:
            raise FaultInjectionError("link endpoints must be distinct, "
                                      "non-negative router ids",
                                      event=self.describe())

    def describe(self) -> str:
        kind = "link_up" if self.up else "link_down"
        return f"{kind}@{self.cycle}:r{self.a}-r{self.b}"


@dataclass(frozen=True)
class RouterStateEvent:
    """Power-gate (or revive) a router at a cycle.

    Gating a router takes down every channel touching it and drops any
    packets buffered inside it (power gating loses SRAM state); reviving
    restores only the links that were alive before the gate.

    Attributes:
        cycle: Absolute cycle the event fires.
        router: Router id.
        up: New state — False for ``router_down``, True for ``router_up``.
    """

    cycle: int
    router: int
    up: bool = False

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise FaultInjectionError("event cycle must be >= 0",
                                      event=self.describe())
        if self.router < 0:
            raise FaultInjectionError("router id must be >= 0",
                                      event=self.describe())

    def describe(self) -> str:
        kind = "router_up" if self.up else "router_down"
        return f"{kind}@{self.cycle}:r{self.router}"


@dataclass(frozen=True)
class SmFaultPolicy:
    """A continuous fault policy on SPIN special messages.

    Attributes:
        action: "drop", "delay" or "corrupt".
        probability: Per-SM fault probability in (0, 1].  With a ``count``
            budget and probability 1.0 the policy is fully deterministic.
        kind: Restrict to one SM kind ("probe", "move", "probe_move",
            "kill_move"); None matches all.
        after: First cycle (inclusive) the policy is armed.
        until: Last cycle (exclusive) the policy applies; None = forever.
        count: Total number of SMs this policy may fault; None = unlimited.
        delay: Extra cycles of link latency for "delay" actions.
    """

    action: str
    probability: float = 1.0
    kind: Optional[str] = None
    after: int = 0
    until: Optional[int] = None
    count: Optional[int] = None
    delay: int = 0

    def __post_init__(self) -> None:
        if self.action not in SM_ACTIONS:
            raise FaultInjectionError(
                f"unknown SM fault action {self.action!r}",
                allowed=list(SM_ACTIONS))
        if not (0.0 < self.probability <= 1.0):
            raise FaultInjectionError("SM fault probability must be in (0, 1]",
                                      probability=self.probability)
        if self.kind is not None and self.kind not in SM_KINDS:
            raise FaultInjectionError(f"unknown SM kind {self.kind!r}",
                                      allowed=list(SM_KINDS))
        if self.after < 0:
            raise FaultInjectionError("'after' cycle must be >= 0",
                                      after=self.after)
        if self.until is not None and self.until <= self.after:
            raise FaultInjectionError("'until' must be > 'after'",
                                      after=self.after, until=self.until)
        if self.count is not None and self.count < 1:
            raise FaultInjectionError("SM fault count must be >= 1",
                                      count=self.count)
        if self.action == "delay" and self.delay < 1:
            raise FaultInjectionError("SM delay must be >= 1 cycle",
                                      delay=self.delay)
        if self.action != "delay" and self.delay != 0:
            raise FaultInjectionError(
                "'d=' is only meaningful for sm_delay", action=self.action)

    def active_at(self, cycle: int) -> bool:
        """Whether the policy window covers a cycle (budget not included)."""
        if cycle < self.after:
            return False
        return self.until is None or cycle < self.until

    def matches_kind(self, sm_kind: str) -> bool:
        """Whether an SM kind falls under this policy."""
        return self.kind is None or self.kind == sm_kind

    def describe(self) -> str:
        parts = [f"sm_{self.action}"]
        if self.after:
            parts[0] += f"@{self.after}"
        if self.probability != 1.0:
            parts.append(f"p={self.probability:g}")
        if self.kind is not None:
            parts.append(f"kind={self.kind}")
        if self.until is not None:
            parts.append(f"until={self.until}")
        if self.count is not None:
            parts.append(f"n={self.count}")
        if self.action == "delay":
            parts.append(f"d={self.delay}")
        return ":".join(parts)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, validated fault program for one simulation.

    Attributes:
        timed_events: Link/router state events, fired in (cycle, order)
            sequence by the injector.
        sm_policies: Continuous SM fault policies, consulted in order for
            every SM send (first matching policy wins).
    """

    timed_events: Tuple[object, ...] = ()
    sm_policies: Tuple[SmFaultPolicy, ...] = ()

    def __post_init__(self) -> None:
        for event in self.timed_events:
            if not isinstance(event, (LinkStateEvent, RouterStateEvent)):
                raise FaultInjectionError(
                    "timed_events accepts LinkStateEvent/RouterStateEvent",
                    got=type(event).__name__)
        for policy in self.sm_policies:
            if not isinstance(policy, SmFaultPolicy):
                raise FaultInjectionError(
                    "sm_policies accepts SmFaultPolicy",
                    got=type(policy).__name__)

    @property
    def empty(self) -> bool:
        """Whether the schedule contains no faults at all."""
        return not self.timed_events and not self.sm_policies

    def describe(self) -> str:
        """Canonical spec string (parsable by :func:`parse_fault_spec`)."""
        parts = [event.describe() for event in self.timed_events]
        parts.extend(policy.describe() for policy in self.sm_policies)
        return ",".join(parts)
