"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Args:
        headers: Column titles.
        rows: Row cell values (converted via str/float formatting).
        title: Optional title line above the table.
    """
    rendered: List[List[str]] = [[_render_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)
