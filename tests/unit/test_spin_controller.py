"""Unit tests for the per-router SPIN controller (FSM and SM handlers)."""

import pytest

from repro.config import SpinParams
from repro.core.fsm import SpinState
from repro.core.messages import MoveMessage, ProbeMessage
from repro.sim.engine import Simulator
from repro.topology.ring import CLOCKWISE, COUNTER_CLOCKWISE

from tests.conftest import craft_ring_deadlock, make_mesh_network, make_ring_network


def spin_network(m=6, tdd=8, **kwargs):
    network = make_ring_network(m=m, spin=SpinParams(tdd=tdd, **kwargs))
    return network


class TestDetectionCounter:
    def test_off_when_empty(self):
        network = spin_network()
        sim = Simulator()
        sim.register(network)
        sim.run(5)
        assert all(c.state is SpinState.OFF for c in network.spin.controllers)

    def test_dd_when_occupied(self):
        network = spin_network()
        craft_ring_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        assert all(c.state is SpinState.DD for c in network.spin.controllers)
        assert all(c.pointer is not None for c in network.spin.controllers)

    def test_probe_sent_on_expiry(self):
        network = spin_network(tdd=5)
        craft_ring_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(8)
        assert network.stats.events.get("probes_sent", 0) >= 1

    def test_no_probe_before_tdd(self):
        network = spin_network(tdd=50)
        craft_ring_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(40)
        assert network.stats.events.get("probes_sent", 0) == 0

    def test_counter_resets_when_packet_moves(self):
        # Light traffic on a mesh: packets move well before tDD expires,
        # so no probes are ever sent.
        from repro.traffic.generator import SyntheticTraffic
        from repro.traffic.patterns import make_pattern

        network = make_mesh_network(side=4, vcs=2, spin=SpinParams(tdd=64))
        network.stats.open_window(0, None)
        traffic = SyntheticTraffic(network, make_pattern("uniform", 16),
                                   0.02, seed=5)
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(2000)
        assert network.stats.events.get("probes_sent", 0) == 0
        assert network.stats.events.get("spins", 0) == 0


class TestProbeRules:
    def test_probe_dropped_at_idle_input_port(self):
        network = spin_network()
        craft_ring_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        controller = network.spin.controllers[2]
        # Probe arrives at the clockwise inport, which is empty (packets sit
        # at the counter-clockwise inports).
        probe = ProbeMessage(sender=0, send_cycle=0)
        controller.on_sm(probe, CLOCKWISE, now=2)
        assert network.stats.events.get("probes_dropped_idle_vc", 0) == 1

    def test_probe_forked_along_dependency(self):
        network = spin_network()
        craft_ring_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(2)  # requests computed
        controller = network.spin.controllers[2]
        probe = ProbeMessage(sender=0, send_cycle=0)
        controller.on_sm(probe, COUNTER_CLOCKWISE, now=2)
        # Forwarded out of the clockwise port, path extended.
        sent = network.spin._outbox
        assert len(sent) == 1
        router_id, outport, sm = sent[0]
        assert router_id == 2
        assert outport == CLOCKWISE
        assert sm.path == (CLOCKWISE,)

    def test_own_probe_returning_starts_move(self):
        network = spin_network(m=5, tdd=6)
        craft_ring_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(30)
        assert network.stats.events.get("moves_sent", 0) >= 1

    def test_strict_priority_drop(self):
        network = make_ring_network(
            m=6, spin=SpinParams(tdd=8, strict_priority_drop=True))
        craft_ring_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(3)
        controller = network.spin.controllers[5]
        # Sender 0 has lower dynamic priority than router 5 in epoch 0.
        probe = ProbeMessage(sender=0, send_cycle=0)
        controller.on_sm(probe, COUNTER_CLOCKWISE, now=3)
        assert network.stats.events.get("probes_dropped_priority", 0) == 1


class TestMoveRules:
    def _deadlocked_network(self):
        network = spin_network(m=6, tdd=8)
        craft_ring_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(3)
        return network

    def test_move_freezes_matching_vc(self):
        network = self._deadlocked_network()
        controller = network.spin.controllers[1]
        move = MoveMessage(sender=0, send_cycle=3, path=(CLOCKWISE, CLOCKWISE),
                           spin_cycle=40, hop_index=1)
        controller.on_sm(move, COUNTER_CLOCKWISE, now=3)
        vc = network.routers[1].inports[COUNTER_CLOCKWISE][0]
        assert vc.frozen
        assert vc.freeze_source == 0
        assert vc.freeze_spin_cycle == 40
        assert controller.state is SpinState.FROZEN
        assert controller.is_deadlock
        assert controller.latched_source == 0

    def test_move_dropped_without_dependency(self):
        network = self._deadlocked_network()
        controller = network.spin.controllers[1]
        # No packet at router 1 wants the counter-clockwise port.
        move = MoveMessage(sender=0, send_cycle=3,
                           path=(COUNTER_CLOCKWISE,), spin_cycle=40)
        controller.on_sm(move, COUNTER_CLOCKWISE, now=3)
        assert network.stats.events.get("moves_dropped_no_dependency", 0) == 1
        assert not controller.is_deadlock

    def test_second_move_source_mismatch_dropped(self):
        network = self._deadlocked_network()
        controller = network.spin.controllers[1]
        first = MoveMessage(sender=0, send_cycle=3, path=(CLOCKWISE,),
                            spin_cycle=40, hop_index=1)
        controller.on_sm(first, COUNTER_CLOCKWISE, now=3)
        rival = MoveMessage(sender=3, send_cycle=3, path=(CLOCKWISE,),
                            spin_cycle=44, hop_index=1)
        controller.on_sm(rival, COUNTER_CLOCKWISE, now=3)
        assert network.stats.events.get("moves_dropped_busy", 0) == 1
        vc = network.routers[1].inports[COUNTER_CLOCKWISE][0]
        assert vc.freeze_source == 0  # still the first recovery

    def test_kill_move_unfreezes(self):
        from repro.core.messages import KillMoveMessage

        network = self._deadlocked_network()
        controller = network.spin.controllers[1]
        move = MoveMessage(sender=0, send_cycle=3, path=(CLOCKWISE,),
                           spin_cycle=40, hop_index=1)
        controller.on_sm(move, COUNTER_CLOCKWISE, now=3)
        kill = KillMoveMessage(sender=0, send_cycle=5, path=(CLOCKWISE,),
                               hop_index=1)
        controller.on_sm(kill, COUNTER_CLOCKWISE, now=5)
        vc = network.routers[1].inports[COUNTER_CLOCKWISE][0]
        assert not vc.frozen
        assert not controller.is_deadlock
        assert controller.state is SpinState.DD

    def test_kill_move_source_mismatch_dropped(self):
        from repro.core.messages import KillMoveMessage

        network = self._deadlocked_network()
        controller = network.spin.controllers[1]
        move = MoveMessage(sender=0, send_cycle=3, path=(CLOCKWISE,),
                           spin_cycle=40, hop_index=1)
        controller.on_sm(move, COUNTER_CLOCKWISE, now=3)
        kill = KillMoveMessage(sender=2, send_cycle=5, path=(CLOCKWISE,),
                               hop_index=1)
        controller.on_sm(kill, COUNTER_CLOCKWISE, now=5)
        vc = network.routers[1].inports[COUNTER_CLOCKWISE][0]
        assert vc.frozen  # rival kill must not cancel this freeze
        assert network.stats.events.get("kill_moves_dropped_busy", 0) == 1


class TestInitiatorTimeouts:
    def test_move_timeout_sends_kill(self):
        network = spin_network(m=6, tdd=8)
        craft_ring_deadlock(network)
        controller = network.spin.controllers[0]
        sim = Simulator()
        sim.register(network)
        sim.run(3)
        # Force an initiator context whose move will never return.
        controller.state = SpinState.MOVE
        controller.loop_path = (CLOCKWISE,) * 5
        controller.loop_delay = 6
        controller.probe_inport = COUNTER_CLOCKWISE
        controller.probe_outport = CLOCKWISE
        controller.spin_cycle = 100
        controller.deadline = 4
        sim.run(3)
        assert controller.state in (SpinState.KILL_MOVE, SpinState.DD)
        assert network.stats.events.get("kill_moves_sent", 0) >= 1
