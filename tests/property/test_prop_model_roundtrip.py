"""Counterexample round-trip: every abstract violation fails concretely.

The model checker's verdicts are only trustworthy if its counterexamples
correspond to real failures: for each protocol mutation, the checker's
minimal abstract counterexample is converted into a concrete replay
(:mod:`repro.verify.model.scenario`) that inflicts the same mistake on
the design's planted-loop fabric under the reference simulator — and the
runtime invariant oracle must report the *same invariant family* the
abstract property maps onto.  The unmutated replay must stay spotless
(specificity), and the pinned fixtures under tests/fixtures/model/ must
keep telling the same story (regeneration guard).
"""

from __future__ import annotations

import functools
import os

import pytest

from repro.verify.model import MUTATIONS, ModelChecker, PROPERTY_TO_INVARIANT
from repro.verify.model.designs import DESIGNS
from repro.verify.model.scenario import (
    FIXTURE_FORMAT,
    INTERVENTIONS,
    load_fixture,
    scenario_from_counterexample,
)

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                           "fixtures", "model")
ROUNDTRIP_DESIGNS = ("ring3", "mesh2x2")


@functools.lru_cache(maxsize=None)
def _counterexample_scenario(design_name: str, mutation: str):
    design = DESIGNS[design_name]
    result = ModelChecker(
        design.model_config(mutation=mutation),
        weights=design.weights(),
        persistence_bound=design.persistence_bound(),
    ).run(max_states=50_000)
    assert result.counterexample is not None, (design_name, mutation)
    return scenario_from_counterexample(result, design, mutation)


class TestRoundTrip:
    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    @pytest.mark.parametrize("design_name", ROUNDTRIP_DESIGNS)
    def test_counterexample_replays_concretely(self, design_name, mutation):
        scenario = _counterexample_scenario(design_name, mutation)
        outcome = scenario.replay()
        assert outcome.intervention_fired_at is not None, (
            "the scripted intervention never reached its trigger scene")
        assert outcome.tripped(scenario.expected_invariant), (
            f"abstract violation of {scenario.counterexample.violation.prop}"
            f" should trip {scenario.expected_invariant} concretely, "
            f"got {outcome.families}")

    @pytest.mark.parametrize("design_name", ROUNDTRIP_DESIGNS)
    def test_unmutated_replay_is_clean(self, design_name):
        scenario = _counterexample_scenario(
            design_name, "freeze_ignores_state_guard")
        outcome = scenario.replay_clean()
        assert outcome.families == ()
        assert outcome.delivered == scenario.design.loop_size

    def test_interventions_cover_all_mutations(self):
        assert set(INTERVENTIONS) == set(MUTATIONS)

    def test_property_map_is_total_and_distinct(self):
        families = set(PROPERTY_TO_INVARIANT.values())
        assert len(families) == len(PROPERTY_TO_INVARIANT)


class TestFixtures:
    def _fixture_names(self):
        return sorted(name for name in os.listdir(FIXTURE_DIR)
                      if name.endswith(".json"))

    def test_fixture_per_design_mutation_pair(self):
        expected = {f"cex_{design}_{mutation}.json"
                    for design in ROUNDTRIP_DESIGNS
                    for mutation in MUTATIONS}
        assert set(self._fixture_names()) == expected

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    @pytest.mark.parametrize("design_name", ROUNDTRIP_DESIGNS)
    def test_fixture_matches_fresh_derivation(self, design_name, mutation):
        """The pinned abstract trace still matches what the checker finds
        (BFS over a canonicalized space is deterministic), and its mapped
        invariant is still the family the replay must trip."""
        path = os.path.join(FIXTURE_DIR,
                            f"cex_{design_name}_{mutation}.json")
        payload = load_fixture(path)
        assert payload["format"] == FIXTURE_FORMAT
        scenario = _counterexample_scenario(design_name, mutation)
        cex = scenario.counterexample
        assert payload["property"] == cex.violation.prop
        assert payload["expected_invariant"] == scenario.expected_invariant
        assert payload["expected_invariant"] \
            == PROPERTY_TO_INVARIANT[payload["property"]]
        assert payload["depth"] == cex.depth
        assert [step["action"] for step in payload["trace"]] \
            == [action for action, _ in cex.trace]
