"""Table I of the paper: qualitative comparison of deadlock-freedom theories.

Encoded as data (not prose) so the benchmark harness can regenerate the
table and the tests can cross-check it against the properties of the
implemented algorithms (e.g. the VC minimums enforced by each routing
class's configuration validation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class TheoryRow:
    """One row of Table I.

    VC costs are per message class; ``None`` marks "not possible".
    """

    theory: str
    injection_restrictions: bool
    acyclic_cdg_required: bool
    topology_dependent: bool
    vc_min_deterministic_mesh: Optional[int]
    vc_min_deterministic_dragonfly: Optional[int]
    vc_fully_adaptive_mesh: Optional[int]
    vc_fully_adaptive_dragonfly: Optional[int]
    livelock_freedom_cost: str
    notes: str = ""


TABLE_I: Tuple[TheoryRow, ...] = (
    TheoryRow(
        theory="Dally's Theory",
        injection_restrictions=False,
        acyclic_cdg_required=True,
        topology_dependent=True,
        vc_min_deterministic_mesh=1,
        vc_min_deterministic_dragonfly=2,
        vc_fully_adaptive_mesh=6,
        vc_fully_adaptive_dragonfly=3,
        livelock_freedom_cost="None",
    ),
    TheoryRow(
        theory="Duato's Theory",
        injection_restrictions=False,
        acyclic_cdg_required=False,
        topology_dependent=True,
        vc_min_deterministic_mesh=1,
        vc_min_deterministic_dragonfly=2,
        vc_fully_adaptive_mesh=2,
        vc_fully_adaptive_dragonfly=3,
        livelock_freedom_cost="None",
        notes=("Needs only an acyclic connected sub-graph, but must know the "
               "topology to design the escape-VC CDG."),
    ),
    TheoryRow(
        theory="Flow Control",
        injection_restrictions=True,
        acyclic_cdg_required=False,
        topology_dependent=True,
        vc_min_deterministic_mesh=2,
        vc_min_deterministic_dragonfly=2,
        vc_fully_adaptive_mesh=2,
        vc_fully_adaptive_dragonfly=2,
        livelock_freedom_cost="None",
    ),
    TheoryRow(
        theory="Deflection Routing",
        injection_restrictions=True,
        acyclic_cdg_required=False,
        topology_dependent=False,
        vc_min_deterministic_mesh=None,
        vc_min_deterministic_dragonfly=None,
        vc_fully_adaptive_mesh=0,
        vc_fully_adaptive_dragonfly=0,
        livelock_freedom_cost="High",
        notes=("Minimal routing cannot be guaranteed by design; cannot "
               "inject when #packets at a router equals its output ports."),
    ),
    TheoryRow(
        theory="SPIN",
        injection_restrictions=False,
        acyclic_cdg_required=False,
        topology_dependent=False,
        vc_min_deterministic_mesh=1,
        vc_min_deterministic_dragonfly=1,
        vc_fully_adaptive_mesh=1,
        vc_fully_adaptive_dragonfly=1,
        livelock_freedom_cost="None",
    ),
)


def spin_row() -> TheoryRow:
    """The SPIN row (convenience for tests)."""
    return TABLE_I[-1]
