"""Successor generation: the abstract SPIN protocol rules.

Each rule mirrors one handler of :class:`repro.core.controller
.SpinController` (cross-referenced below), restricted to a single
deadlocked loop with abstracted time:

* ``detect@i``       — ``_tick_detection`` firing and ``_send_probe``;
* ``deliver <sm>@i`` — one SM hop: ``phase_control`` delivery plus the
  receiving handler (``_on_probe`` / ``_on_move`` / ``_on_probe_move`` /
  ``_on_kill_move``);
* ``drop <sm>@i``    — adversarial bufferless loss (link contention, a
  fault, or a strict-priority drop), budgeted by ``drops_left``;
* ``watchdog@i``     — a counter timeout (``tick``); enabled only once the
  awaited SM is provably gone, because real timeouts exceed the round-trip
  bound (``sm_rtt_bound``) — a fired watchdog implies a loss;
* ``escape@i``       — the FROZEN overdue escape in ``tick``;
* ``spin@i`` / ``abort@i`` — the executor callbacks
  (``on_spin_complete`` / ``on_spin_aborted``).

Rival arbitration (``_yields_to_rival_initiator``) uses a *rotating*
priority in the concrete protocol; with time abstracted away the model
explores **both** outcomes of every rival encounter, a sound
over-approximation of any priority schedule that also keeps the loop's
rotational symmetry intact.

Deliberate protocol mutations (:data:`MUTATIONS`) switch individual rules
to known-broken variants so the checker demonstrably finds — and the
round-trip suite replays — the violations each guard exists to prevent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, Tuple

from repro.core.fsm import FREEZABLE_STATES, SpinState
from repro.verify.model.state import (
    NOBODY,
    GlobalState,
    Message,
    RouterModel,
)

#: Mutation name -> description of the guard it removes.
MUTATIONS: Dict[str, str] = {
    "freeze_ignores_state_guard":
        "_freeze flips any state to FROZEN, not just OFF/DD — an initiator "
        "mid-recovery is silently demoted (illegal FSM transition)",
    "progress_skips_home_guards":
        "_on_own_move_returned omits the rival-latch and freezable-VC "
        "kills, force-latching over a rival's freeze token (duplicate "
        "spin token)",
    "kill_return_declares_progress":
        "a returning kill_move is miscounted as forward progress: the "
        "deadlock is marked resolved although nothing rotated (lost "
        "deadlock)",
}


@dataclass(frozen=True)
class ModelConfig:
    """Knobs of one exhaustive run.

    Attributes:
        loop_size: Routers on the abstract deadlock loop.
        probe_budget: Detection probes each router may originate.
        drop_budget: Adversarial SM losses across the whole run.
        probe_move_enabled: Model the Sec. IV-B4 repeat-spin optimization.
        initiators: How many loop routers get a detection budget; 1 is the
            liveness/bound mode (the rotating priority's surviving winner,
            pinned), None arms everyone (the safety race mode).
        max_probe_hops: Probe path cap (``framework.max_probe_path``);
            defaults to ``2 * loop_size`` like ``probe_path_factor=2``.
        mutation: Name from :data:`MUTATIONS`, or None for the faithful
            protocol.
    """

    loop_size: int
    probe_budget: int = 1
    drop_budget: int = 0
    probe_move_enabled: bool = False
    initiators: int = None
    max_probe_hops: int = 0
    mutation: str = None

    def __post_init__(self):
        if self.max_probe_hops == 0:
            object.__setattr__(self, "max_probe_hops", 2 * self.loop_size)
        if self.mutation is not None and self.mutation not in MUTATIONS:
            raise ValueError(f"unknown mutation {self.mutation!r}; "
                             f"known: {sorted(MUTATIONS)}")


def successors(state: GlobalState, config: ModelConfig
               ) -> Iterator[Tuple[str, GlobalState]]:
    """All ``(action label, next state)`` pairs enabled in ``state``."""
    n = state.size
    for i in range(n):
        if _may_detect(state, i):
            yield f"detect@{i}", _detect(state, i)
        if _watchdog_enabled(state, i):
            yield f"watchdog@{i}", _watchdog(state, i, config)
        if _escape_enabled(state, i):
            yield f"escape@{i}", _escape(state, i)
        router = state.routers[i]
        if router.fsm is SpinState.FORWARD_PROGRESS:
            if all(r.frozen_by == i for r in state.routers):
                yield f"spin@{i}", _spin(state, i, config)
            else:
                yield f"abort@{i}", _abort(state, i)
    for index, message in enumerate(state.messages):
        label = f"{message.kind}@{message.at}"
        for outcome, nxt in _deliver(state, index, config):
            yield f"deliver {label} ({outcome})", nxt
        if state.drops_left > 0:
            yield f"drop {label}", _drop(state, index)


# ----------------------------------------------------------------------
# Detection (controller._tick_detection / _send_probe)
# ----------------------------------------------------------------------
def _may_detect(state: GlobalState, i: int) -> bool:
    router = state.routers[i]
    return (
        not state.resolved                     # loop VC still stuck
        and router.fsm is SpinState.DD
        and router.frozen_by == NOBODY         # _tick_detection: not frozen
        and router.probes_left > 0
        and not any(m.kind == "probe" and m.origin == i
                    for m in state.messages)   # one own probe outstanding
    )


def _detect(state: GlobalState, i: int) -> GlobalState:
    router = state.routers[i]
    nxt = state.with_router(i, replace(router,
                                       probes_left=router.probes_left - 1))
    probe = Message("probe", origin=i, at=(i + 1) % state.size, hops=1)
    return nxt.with_messages(nxt.messages + (probe,))


# ----------------------------------------------------------------------
# Watchdogs and the FROZEN escape (controller.tick)
# ----------------------------------------------------------------------
_AWAITED = {
    SpinState.MOVE: "move",
    SpinState.PROBE_MOVE: "probe_move",
    SpinState.KILL_MOVE: "kill_move",
}


def _watchdog_enabled(state: GlobalState, i: int) -> bool:
    awaited = _AWAITED.get(state.routers[i].fsm)
    if awaited is None:
        return False
    # Timeouts exceed the round-trip bound, so the watchdog may only fire
    # once the awaited SM is no longer anywhere in flight.
    return not any(m.kind == awaited and m.origin == i
                   for m in state.messages)


def _watchdog(state: GlobalState, i: int, config: ModelConfig
              ) -> GlobalState:
    router = state.routers[i]
    if router.fsm in (SpinState.MOVE, SpinState.PROBE_MOVE):
        return _start_kill(state, i)
    # KILL_MOVE: retries exhausted in the abstraction -> _finish_recovery.
    return _finish_recovery(state, i)


def _escape_source(state: GlobalState, i: int) -> int:
    """The rival initiator whose abandoned token ``i`` carries, or NOBODY.

    Covers both the FROZEN overdue escape in ``tick`` and the executor's
    unconditional abort of an incomplete spin group at its spin cycle
    (``SpinExecutor._abort`` unfreezes every registered VC even when the
    router's own FSM has long moved on — e.g. back to DD after its own
    kill round while still carrying a rival's freeze token).
    """
    router = state.routers[i]
    source = router.latched if router.latched != NOBODY else router.frozen_by
    return NOBODY if source == i else source


def _escape_enabled(state: GlobalState, i: int) -> bool:
    source = _escape_source(state, i)
    if source == NOBODY:
        return False
    # The spin deadline can only pass un-serviced once the initiator has
    # abandoned this recovery: it is no longer mid-protocol and none of its
    # SMs are still traveling the loop.
    initiator = state.routers[source]
    if initiator.fsm in (SpinState.MOVE, SpinState.FORWARD_PROGRESS,
                         SpinState.PROBE_MOVE, SpinState.KILL_MOVE):
        return False
    return not any(m.origin == source and m.kind != "probe"
                   for m in state.messages)


def _escape(state: GlobalState, i: int) -> GlobalState:
    router = state.routers[i]
    source = _escape_source(state, i)
    frozen_by = NOBODY if router.frozen_by == source else router.frozen_by
    latched = NOBODY if router.latched == source else router.latched
    fsm = SpinState.DD if router.fsm is SpinState.FROZEN else router.fsm
    return state.with_router(i, replace(
        router, fsm=fsm, frozen_by=frozen_by, latched=latched))


# ----------------------------------------------------------------------
# Delivery (framework hop + controller.on_sm)
# ----------------------------------------------------------------------
def _deliver(state: GlobalState, index: int, config: ModelConfig
             ) -> Iterator[Tuple[str, GlobalState]]:
    message = state.messages[index]
    base = state.with_messages(state.messages[:index]
                               + state.messages[index + 1:])
    if message.kind == "probe":
        yield from _deliver_probe(base, message, config)
    elif message.kind in ("move", "probe_move"):
        yield from _deliver_move_family(base, message, config)
    else:
        yield from _deliver_kill(base, message, config)


def _forward(state: GlobalState, message: Message) -> GlobalState:
    advanced = replace(message, at=(message.at + 1) % state.size,
                       hops=message.hops + 1)
    return state.with_messages(state.messages + (advanced,))


def _deliver_probe(state: GlobalState, probe: Message, config: ModelConfig
                   ) -> Iterator[Tuple[str, GlobalState]]:
    i = probe.at
    router = state.routers[i]
    if i == probe.origin and router.fsm is SpinState.DD:
        # _accept_own_probe: home, still detecting.  The probed dependency
        # persists while the loop is unresolved and the VC unfrozen.
        if state.resolved or router.frozen_by != NOBODY:
            yield "stale", state                    # probes_stale: consume
            return
        move = Message("move", origin=i, at=(i + 1) % state.size, hops=1)
        nxt = state.with_router(i, replace(router, fsm=SpinState.MOVE))
        yield "accepted", nxt.with_messages(nxt.messages + (move,))
        return
    # _forward_probe: a non-home router (or a home router that has moved
    # on from DD — the controller falls through to forwarding) relays the
    # probe along the dependency, subject to the path-length cap.
    if probe.hops >= config.max_probe_hops:
        yield "len-drop", state
        return
    if state.resolved:
        # The rotated packets' requests are gone: nothing to trace.
        yield "no-dep", state
        return
    yield "forwarded", _forward(state, probe)


def _deliver_move_family(state: GlobalState, message: Message,
                         config: ModelConfig
                         ) -> Iterator[Tuple[str, GlobalState]]:
    i, origin = message.at, message.origin
    router = state.routers[i]
    if i == origin:
        yield from _move_returned(state, message, config)
        return
    # _on_move / _on_probe_move at a non-initiator hop:
    if router.latched not in (NOBODY, origin):
        yield "busy", state                   # moves_dropped_busy
        return
    if router.fsm in (SpinState.MOVE, SpinState.PROBE_MOVE,
                      SpinState.KILL_MOVE):
        # Rival initiator: the rotating priority decides — explore both.
        yield "yield", state                  # moves_dropped_priority
    if state.resolved or router.frozen_by != NOBODY:
        yield "no-dep", state                 # moves_dropped_no_dependency
        return
    frozen = replace(router, frozen_by=origin, latched=origin)
    if router.fsm in FREEZABLE_STATES \
            or config.mutation == "freeze_ignores_state_guard":
        frozen = replace(frozen, fsm=SpinState.FROZEN)
    yield "froze", _forward(state.with_router(i, frozen), message)


def _move_returned(state: GlobalState, message: Message,
                   config: ModelConfig
                   ) -> Iterator[Tuple[str, GlobalState]]:
    i = message.at
    router = state.routers[i]
    expected = (SpinState.MOVE if message.kind == "move"
                else SpinState.PROBE_MOVE)
    if router.fsm is not expected:
        yield "stale", state                  # moves_stale / spin mismatch
        return
    latched = replace(router, fsm=SpinState.FORWARD_PROGRESS,
                      frozen_by=i, latched=i)
    if config.mutation == "progress_skips_home_guards":
        # Both home guards gone: force-latch over whatever token owns the
        # VC — the checker sees the rival's freeze token overwritten.
        yield "progress", state.with_router(i, latched)
        return
    if router.latched not in (NOBODY, i):
        yield "rival-kill", _start_kill(state, i)
        return
    if state.resolved or router.frozen_by != NOBODY:
        # _freezable_vc failed at home: cancel the scheduled spin.
        yield "no-dep-kill", _start_kill(state, i)
        return
    yield "progress", state.with_router(i, latched)


def _deliver_kill(state: GlobalState, kill: Message, config: ModelConfig
                  ) -> Iterator[Tuple[str, GlobalState]]:
    i, origin = kill.at, kill.origin
    router = state.routers[i]
    if i == origin:
        if router.fsm is SpinState.KILL_MOVE:
            nxt = _finish_recovery(state, i)
            if config.mutation == "kill_return_declares_progress":
                nxt = replace(nxt, resolved=True)
            yield "finished", nxt
        else:
            yield "stale", state
        return
    if router.latched not in (NOBODY, origin):
        yield "busy", state                   # kill_moves_dropped_busy
        return
    thawed = router
    if router.frozen_by == origin:
        thawed = replace(thawed, frozen_by=NOBODY)
    if router.latched == origin:
        thawed = replace(thawed, latched=NOBODY)
        if router.fsm is SpinState.FROZEN:
            thawed = replace(thawed, fsm=SpinState.DD)
    yield "thawed", _forward(state.with_router(i, thawed), kill)


def _drop(state: GlobalState, index: int) -> GlobalState:
    return replace(
        state.with_messages(state.messages[:index]
                            + state.messages[index + 1:]),
        drops_left=state.drops_left - 1)


# ----------------------------------------------------------------------
# Initiator bookkeeping (controller._start_kill / _finish_recovery)
# ----------------------------------------------------------------------
def _start_kill(state: GlobalState, i: int) -> GlobalState:
    router = state.routers[i]
    nxt = state.with_router(i, replace(router, fsm=SpinState.KILL_MOVE))
    kill = Message("kill_move", origin=i, at=(i + 1) % state.size, hops=1)
    return nxt.with_messages(nxt.messages + (kill,))


def _finish_recovery(state: GlobalState, i: int) -> GlobalState:
    router = state.routers[i]
    frozen_by = router.frozen_by
    latched = router.latched
    if latched == i:                     # self-latch: unfreeze own VC too
        latched = NOBODY
        if frozen_by == i:
            frozen_by = NOBODY
    return state.with_router(i, replace(
        router, fsm=SpinState.DD, frozen_by=frozen_by, latched=latched))


# ----------------------------------------------------------------------
# The spin itself (executor callbacks)
# ----------------------------------------------------------------------
def _spin(state: GlobalState, i: int, config: ModelConfig) -> GlobalState:
    routers = []
    for j, router in enumerate(state.routers):
        # Every participant: on_spin_complete clears the move manager.
        updated = replace(router, frozen_by=NOBODY, latched=NOBODY)
        if j == i and config.probe_move_enabled:
            updated = replace(updated, fsm=SpinState.PROBE_MOVE)
        else:
            updated = replace(updated, fsm=SpinState.DD)
        routers.append(updated)
    nxt = replace(state, routers=tuple(routers), resolved=True)
    if config.probe_move_enabled:
        pm = Message("probe_move", origin=i, at=(i + 1) % state.size, hops=1)
        nxt = nxt.with_messages(nxt.messages + (pm,))
    return nxt


def _abort(state: GlobalState, i: int) -> GlobalState:
    """on_spin_aborted for every router the broken group registered."""
    routers = []
    for j, router in enumerate(state.routers):
        if j == i or router.frozen_by == i:
            updated = replace(router, frozen_by=NOBODY
                              if router.frozen_by == i else router.frozen_by,
                              latched=NOBODY
                              if router.latched == i else router.latched)
            if updated.fsm in (SpinState.FROZEN,
                               SpinState.FORWARD_PROGRESS):
                updated = replace(updated, fsm=SpinState.DD)
            routers.append(updated)
        else:
            routers.append(router)
    return replace(state, routers=tuple(routers))
