"""Parallel sweep engine: fan :class:`ExperimentSpec` lists across processes.

The paper's evaluation grid (~20 designs x 8 patterns x ~15 rates) is
embarrassingly parallel: every point builds a fresh network from a
picklable spec, so points never share state and a process pool scales the
sweep across cores without perturbing a single measurement.  Determinism
is structural — each worker runs exactly the code a serial driver runs
(:meth:`ExperimentSpec.run`), seeded entirely by the spec — so ``--jobs N``
reproduces ``--jobs 1`` bit for bit.

Failure containment: a worker that raises, crashes, or exceeds the
per-point timeout yields a *failed* :class:`SpecResult` (spec + error
text), never a lost job.  Ordered collection keeps results aligned with
the submitted specs regardless of completion order.

:meth:`ParallelRunner.run_curve` adds the latency-curve policy: points are
collected in ascending-rate order through the same
:class:`~repro.stats.sweep.SaturationCursor` a serial sweep uses, and once
the curve is cut, still-pending higher rates are cancelled (early-stop) —
the returned prefix is identical to a serial sweep's output.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.harness.runner import ExperimentSpec
from repro.stats.sweep import SaturationCursor, SweepPoint

#: Accepted execution backends.
BACKENDS = ("process", "serial")


def _execute_spec(spec: ExperimentSpec):
    """Worker entry point: simulate one spec (module-level: picklable).

    Participates in live streaming when ``REPRO_STREAM_SOCKET`` is in the
    inherited environment (see :mod:`repro.telemetry.live`): the point is
    bracketed by start/end frames and a progress sink is installed, all
    observation-only.
    """
    from repro.telemetry import live

    shipper = live.ensure_worker_shipper()
    key = spec.content_key() if shipper is not None else None
    if shipper is not None:
        total = (spec.sim.warmup_cycles + spec.sim.measure_cycles
                 + spec.sim.drain_cycles)
        shipper.point_start(key, spec.injection_rate, total)
        live.set_progress_sink(shipper)
    started = time.perf_counter()
    try:
        _, point = spec.run()
    except BaseException:
        if shipper is not None:
            live.set_progress_sink(None)
            shipper.point_end(key, False,
                              time.perf_counter() - started)
        raise
    wall = time.perf_counter() - started
    if shipper is not None:
        live.set_progress_sink(None)
        shipper.point_end(key, True, wall, events=point.events)
    return point, wall


@dataclass
class SpecResult:
    """Outcome of one spec: a point, or a failure record — never nothing.

    Attributes:
        spec: The spec that was (attempted to be) simulated; failed specs
            can be resubmitted directly from their record.
        point: The measurement, or ``None`` on failure.
        error: Failure description (exception traceback, timeout, worker
            crash), or ``None`` on success.
        wall_time: Worker-side wall-clock seconds for successful points.
    """

    spec: ExperimentSpec
    point: Optional[SweepPoint]
    error: Optional[str] = None
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether this spec produced a measurement."""
        return self.error is None and self.point is not None


class ParallelRunner:
    """Runs spec lists serially or across a process pool.

    Args:
        max_workers: Worker processes for the ``process`` backend
            (defaults to ``os.cpu_count()``).
        backend: ``"process"`` fans specs across a
            :class:`~concurrent.futures.ProcessPoolExecutor`;
            ``"serial"`` runs them in-process (same collection semantics,
            no pool — useful for debugging and as the ``--jobs 1`` path).
        timeout: Optional per-point timeout in seconds (process backend).
            An expired point becomes a failed record; note that an already
            *running* worker cannot be interrupted and is waited for at
            pool shutdown.
        pool_respawns: How many times :meth:`run` may replace a broken
            process pool and carry on with the remaining specs after a
            worker crash (OOM-kill, segfault).  Once the budget is spent,
            remaining specs are recorded as not run.  ``0`` restores the
            old fail-fast behavior.  Campaigns needing per-worker
            supervision use :class:`repro.harness.supervision.SupervisedPool`
            instead.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 backend: str = "process",
                 timeout: Optional[float] = None,
                 pool_respawns: int = 1) -> None:
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}", known=list(BACKENDS))
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1",
                                     max_workers=max_workers)
        if timeout is not None and timeout <= 0:
            raise ConfigurationError("timeout must be positive",
                                     timeout=timeout)
        if pool_respawns < 0:
            raise ConfigurationError("pool_respawns must be >= 0",
                                     pool_respawns=pool_respawns)
        self.max_workers = max_workers
        self.backend = backend
        self.timeout = timeout
        self.pool_respawns = pool_respawns
        #: Pool respawns consumed by the most recent :meth:`run` call.
        self.respawns_used = 0

    # ------------------------------------------------------------------
    # Whole-list execution
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[ExperimentSpec]) -> List[SpecResult]:
        """Execute every spec; one ordered :class:`SpecResult` each.

        Failures (worker exception, crash, timeout) are captured per spec.
        A worker crash breaks a :class:`ProcessPoolExecutor` permanently,
        so the crashed spec is recorded as failed and — while the
        ``pool_respawns`` budget lasts — a fresh pool is spun up to run
        the remaining specs.  Only once the budget is exhausted are
        leftovers recorded as not run (specs intact for resubmission)
        rather than silently dropped.
        """
        specs = list(specs)
        self.respawns_used = 0
        if self._serial():
            return [self._run_in_process(spec) for spec in specs]
        results: List[Optional[SpecResult]] = [None] * len(specs)
        index = 0
        respawns_left = self.pool_respawns
        while index < len(specs):
            crashed_at: Optional[int] = None
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [pool.submit(_execute_spec, spec)
                           for spec in specs[index:]]
                for offset, future in enumerate(futures):
                    if crashed_at is not None:
                        future.cancel()
                        continue
                    i = index + offset
                    result = self._collect(specs[i], future)
                    results[i] = result
                    if result.error and result.error.startswith(
                            "worker crashed"):
                        crashed_at = i
            if crashed_at is None:
                break
            index = crashed_at + 1
            if respawns_left > 0:
                respawns_left -= 1
                self.respawns_used += 1
                continue
            for i in range(index, len(specs)):
                results[i] = SpecResult(
                    specs[i], None,
                    error="not run: worker pool broke earlier in this "
                          "batch and the respawn budget was exhausted")
            break
        return list(results)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Latency-curve execution with saturation early-stop
    # ------------------------------------------------------------------
    def run_curve(self, specs: Sequence[ExperimentSpec],
                  latency_cap: float = 4.0,
                  points_past_saturation: int = 0) -> List[SweepPoint]:
        """Run one ascending-rate curve; stop (and cancel) at saturation.

        Collection happens in rate order through the same
        :class:`SaturationCursor` a serial :class:`InjectionSweep` uses,
        so the returned points are exactly the serial prefix; in-flight
        higher rates are cancelled once the cut is known.  A failed point
        raises :class:`~repro.errors.SimulationError` carrying the spec
        and the worker's error text.
        """
        specs = list(specs)
        cursor = SaturationCursor(latency_cap, points_past_saturation)
        points: List[SweepPoint] = []
        if self._serial():
            for spec in specs:
                result = self._run_in_process(spec)
                points.append(self._require(result))
                if cursor.push(points[-1]):
                    break
            return points
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [pool.submit(_execute_spec, spec) for spec in specs]
            try:
                for index, future in enumerate(futures):
                    result = self._collect(specs[index], future)
                    points.append(self._require(result))
                    if cursor.push(points[-1]):
                        break
            finally:
                for future in futures:
                    future.cancel()
                pool.shutdown(cancel_futures=True)
        return points

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _serial(self) -> bool:
        return self.backend == "serial" or self.max_workers == 1

    @staticmethod
    def _run_in_process(spec: ExperimentSpec) -> SpecResult:
        """Serial execution with the same failure capture as a worker."""
        started = time.perf_counter()
        try:
            point, wall = _execute_spec(spec)
        except Exception:
            return SpecResult(spec, None, error=traceback.format_exc(),
                              wall_time=time.perf_counter() - started)
        return SpecResult(spec, point, wall_time=wall)

    def _collect(self, spec: ExperimentSpec, future) -> SpecResult:
        """Turn one future into a result, capturing every failure mode."""
        try:
            point, wall = future.result(timeout=self.timeout)
        except FuturesTimeoutError:
            future.cancel()
            return SpecResult(
                spec, None,
                error=f"timeout: point exceeded {self.timeout}s")
        except BrokenProcessPool as exc:
            return SpecResult(spec, None,
                              error=f"worker crashed: {exc!r}")
        except Exception as exc:
            detail = getattr(exc, "__traceback_str__", None) or repr(exc)
            return SpecResult(spec, None, error=f"worker raised: {detail}")
        return SpecResult(spec, point, wall_time=wall)

    @staticmethod
    def _require(result: SpecResult) -> SweepPoint:
        """Unwrap a curve point; a failure aborts the curve loudly."""
        if not result.ok:
            raise SimulationError(
                "sweep point failed",
                design=result.spec.design,
                pattern=result.spec.pattern,
                rate=result.spec.injection_rate,
                error=result.error)
        return result.point
