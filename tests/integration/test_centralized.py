"""Tests for the centralized SPIN reference implementation (Sec. III)."""

import pytest

from repro.config import NetworkConfig
from repro.core.centralized import CentralizedSpinPlane
from repro.deadlock.waitgraph import has_deadlock
from repro.errors import ConfigurationError
from repro.network.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim.engine import Simulator
from repro.topology.mesh import MeshTopology
from repro.topology.ring import RingTopology
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern

from tests.conftest import craft_figure8_deadlock, craft_ring_deadlock, craft_square_deadlock


def centralized_network(topology=None, check_period=16, seed=1):
    return Network(topology or MeshTopology(4, 4),
                   NetworkConfig(vcs_per_vnet=1),
                   MinimalAdaptiveRouting(seed),
                   control_planes=(CentralizedSpinPlane(check_period),),
                   seed=seed)


class TestValidation:
    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            CentralizedSpinPlane(check_period=0)


class TestRecovery:
    def test_ring_deadlock_resolved_within_bound(self):
        network = centralized_network(RingTopology(6))
        packets = craft_ring_deadlock(network, dst_ahead=2)
        sim = Simulator()
        sim.register(network)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=500)
        assert done
        # Theorem bound holds here too.
        assert max(p.spins for p in packets) <= 5
        assert network.control_planes[0].spins_performed >= 1

    def test_square_deadlock_resolved(self):
        network = centralized_network()
        packets = craft_square_deadlock(network)
        sim = Simulator()
        sim.register(network)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=800)
        assert done

    def test_figure8_resolved(self):
        network = centralized_network()
        packets = craft_figure8_deadlock(network)
        sim = Simulator()
        sim.register(network)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=1500)
        assert done

    def test_no_spins_without_deadlock(self):
        network = centralized_network(seed=5)
        network.stats.open_window(0, 1500)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.05, seed=5,
            stop_at=1500, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(3000)
        assert network.control_planes[0].spins_performed == 0
        assert network.is_drained()

    def test_sustained_load_conserved(self):
        network = centralized_network(seed=7)
        network.stats.open_window(0, 1000)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.3, seed=7,
            stop_at=1000, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(12000)
        stats = network.stats
        assert stats.packets_created == (
            stats.packets_delivered + network.packets_in_flight()
            + network.total_backlog())
        assert not has_deadlock(network, sim.cycle)


class TestRecoveryLatencyBound:
    def test_faster_than_distributed(self):
        # The centralized oracle needs no probes/moves: first spin within
        # one check period plus epsilon, versus tDD + 3x loop for the
        # distributed protocol.
        from repro.config import SpinParams

        def first_spin_cycle(make):
            network = make()
            craft_ring_deadlock(network, dst_ahead=2)
            sim = Simulator()
            sim.register(network)
            event = "spins" if network.spin is not None else "centralized_spins"
            done = sim.run_until(
                lambda: network.stats.events.get(event, 0) >= 1,
                max_cycles=2000)
            assert done
            return sim.cycle

        centralized = first_spin_cycle(
            lambda: centralized_network(RingTopology(6), check_period=16))
        distributed = first_spin_cycle(
            lambda: Network(RingTopology(6), NetworkConfig(vcs_per_vnet=1),
                            MinimalAdaptiveRouting(1),
                            spin=SpinParams(tdd=16), seed=1))
        assert centralized <= distributed
