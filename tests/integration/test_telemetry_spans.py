"""SPIN span reconstruction against the planted-deadlock golden trace.

The ``mesh4_square_deadlock`` scenario (repro.verify.golden) plants the
paper's Fig. 2 square deadlock on a 4x4 mesh with SPIN at tdd=8 and no
traffic source, so exactly one synchronized spin resolves it.  These tests
assert that the telemetry span tracer reconstructs that recovery as
exactly one *complete* detection→spin episode — and that the span's cycle
bounds agree with the independently recorded golden trace fixture in
tests/fixtures/golden/ (the cycle whose ``spins`` event delta fires must
be the span's spin cycle).
"""

import os

import pytest

from repro.sim.engine import Simulator
from repro.telemetry import TelemetryConfig, TelemetryObserver
from repro.verify.golden import SCENARIOS
from repro.verify.trace import load_fixture

FIXTURE = os.path.join(os.path.dirname(__file__), os.pardir, "fixtures",
                       "golden", "mesh4_square_deadlock.json")


@pytest.fixture(scope="module")
def recorded():
    """Run the scenario once under telemetry; share across the module."""
    scenario = SCENARIOS["mesh4_square_deadlock"]
    network, traffic = scenario.builder()
    simulator = Simulator()
    if traffic is not None:
        simulator.register(traffic)
    simulator.register(network)
    observer = TelemetryObserver(
        network, TelemetryConfig(sample_interval=16)).attach(simulator)
    simulator.run(scenario.cycles)
    observer.finalize(simulator.cycle)
    return network, observer


def _golden_event_cycles(event_name):
    """Cycles at which the golden trace recorded a delta of ``event``."""
    payload = load_fixture(FIXTURE)
    cycles = []
    for record in payload["records"]:
        for name, delta in record[8:]:
            if name == event_name and delta > 0:
                cycles.append(record[0])
    return cycles


class TestDeadlockSpanReconstruction:
    def test_exactly_one_complete_detection_to_spin_span(self, recorded):
        network, observer = recorded
        recovered = [span for span in observer.spans
                     if span.kind == "spin_episode"
                     and span.outcome == "recovered"]
        assert len(recovered) == 1
        span = recovered[0]
        assert span.complete
        assert len(span.spin_cycles) == 1
        # Detection latency is the full countdown plus the probe round
        # trip: tdd=8 around the 4-router square (loop delay 4) -> 12.
        assert span.tdd == 8
        assert span.loop_delay == 4
        assert span.detection_latency == 12
        assert span.recovery_latency is not None
        assert span.recovery_latency > 0
        assert span.start_cycle == span.move_cycle - span.loop_delay
        assert span.start_cycle < span.spin_cycles[0] <= span.end_cycle

    def test_span_cycle_bounds_match_golden_trace(self, recorded):
        """The tracer's spin cycle is the fixture's ``spins`` delta cycle."""
        _, observer = recorded
        recovered = [span for span in observer.spans
                     if span.outcome == "recovered"]
        golden_spins = _golden_event_cycles("spins")
        assert len(golden_spins) == 1
        assert recovered[0].spin_cycles == golden_spins

    def test_span_counters_merge_into_stats_events(self, recorded):
        network, observer = recorded
        events = network.stats.events
        assert events["telemetry_spans_recovered"] == 1
        assert events["telemetry_spans"] == sum(
            1 for span in observer.spans if span.kind == "spin_episode")
        assert events["telemetry_span_spins"] == 1
        assert events["spins"] == 1

    def test_deadlock_actually_resolves(self, recorded):
        network, _ = recorded
        assert network.stats.packets_delivered == 4
        assert network.packets_in_flight() == 0

    def test_detection_histogram_populated(self, recorded):
        _, observer = recorded
        histogram = observer.registry.histogram("detection_latency")
        assert histogram.observations >= 1
        assert histogram.minimum == 12
