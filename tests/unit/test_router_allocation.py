"""Unit tests for router switch allocation and the datapath timing contract."""

import pytest

from repro.network.packet import Packet
from repro.network.router import EJECT_PORT_BASE, is_ejection_port
from repro.sim.engine import Simulator
from repro.topology.mesh import EAST, MeshTopology, WEST

from tests.conftest import make_mesh_network


def inject_directly(network, src_router, dst_router, length=1, now=0,
                    vnet=0):
    """Plant a packet into the injection-port VC of a router."""
    packet = Packet(src_node=src_router, dst_node=dst_router,
                    src_router=src_router, dst_router=dst_router,
                    length=length, vnet=vnet, create_cycle=now)
    packet.inject_cycle = now
    router = network.routers[src_router]
    inport = network.nics[src_router].inject_port
    vc = router.vnet_slice(inport, vnet)[0]
    vc.reserve(packet, now=now, link_latency=0, router_latency=0)
    vc.ready_at = now
    vc.tail_arrival = now
    network.note_vc_reserved(router)
    network.stats.record_creation(packet, now)
    return packet


def run(network, cycles):
    simulator = Simulator()
    simulator.register(network)
    simulator.run(cycles)
    return simulator


class TestBasicForwarding:
    def test_single_hop_delivery(self):
        network = make_mesh_network()
        network.stats.open_window(0, None)
        packet = inject_directly(network, src_router=0, dst_router=1)
        run(network, 10)
        assert packet.eject_cycle is not None
        assert packet.hops == 1

    def test_zero_load_latency_scales_with_hops(self):
        # 1-cycle router + 1-cycle link: each hop costs 2 cycles.
        network = make_mesh_network()
        network.stats.open_window(0, None)
        mesh: MeshTopology = network.topology
        packet = inject_directly(network, src_router=mesh.router_at(0, 0),
                                 dst_router=mesh.router_at(3, 0))
        run(network, 20)
        assert packet.hops == 3
        # grant at 0, hops every 2 cycles, ejection link + serialization.
        assert packet.eject_cycle == pytest.approx(2 * 3 + 1, abs=1)

    def test_multi_flit_serialization(self):
        network = make_mesh_network()
        network.stats.open_window(0, None)
        short = inject_directly(network, 0, 3, length=1)
        long = inject_directly(network, 4, 7, length=5)
        run(network, 40)
        assert short.eject_cycle is not None
        assert long.eject_cycle is not None
        # Same hop count; the long packet pays (length - 1) extra cycles.
        assert long.eject_cycle - short.eject_cycle == 4

    def test_hops_equal_min_hops_under_minimal_routing(self):
        network = make_mesh_network()
        network.stats.open_window(0, None)
        packets = [
            inject_directly(network, src, dst)
            for src, dst in [(0, 15), (3, 12), (5, 10), (12, 2)]
        ]
        run(network, 60)
        for packet in packets:
            assert packet.eject_cycle is not None
            assert packet.hops == network.topology.min_hops(
                packet.src_router, packet.dst_router)
            assert packet.misroutes == 0


class TestContention:
    def test_output_port_serializes_competitors(self):
        # Two packets at the same router (separate vnet injection VCs) both
        # want the eastbound link; they must win on different cycles.
        network = make_mesh_network(side=4, vcs=1, num_vnets=2)
        network.stats.open_window(0, None)
        mesh = network.topology
        a = inject_directly(network, mesh.router_at(0, 1), mesh.router_at(3, 1),
                            vnet=0)
        b = inject_directly(network, mesh.router_at(0, 1), mesh.router_at(3, 1),
                            vnet=1)
        run(network, 40)
        assert a.eject_cycle is not None and b.eject_cycle is not None
        assert a.eject_cycle != b.eject_cycle

    def test_injection_port_one_packet_at_a_time(self):
        network = make_mesh_network()
        network.stats.open_window(0, None)
        a = inject_directly(network, 0, 3, length=5, vnet=0)
        run(network, 30)
        assert a.eject_cycle is not None

    def test_frozen_vc_excluded_from_allocation(self):
        network = make_mesh_network()
        network.stats.open_window(0, None)
        packet = inject_directly(network, 0, 3)
        run(network, 2)  # packet reaches router 1's west inport
        # Find the VC holding the packet and freeze it.
        held = None
        for router, inport, vc in network.occupied_vcs():
            if vc.packet is packet:
                held = vc
        assert held is not None
        held.freeze(outport=EAST, source=0, spin_cycle=10_000, path_index=0)
        run(network, 20)
        assert packet.eject_cycle is None  # cannot move while frozen
        held.clear_freeze()
        run(network, 20)
        assert packet.eject_cycle is not None


class TestEjection:
    def test_ejection_port_constants(self):
        assert is_ejection_port(EJECT_PORT_BASE)
        assert not is_ejection_port(3)

    def test_ejection_request_recorded(self):
        network = make_mesh_network()
        network.stats.open_window(0, None)
        packet = inject_directly(network, 0, 0 + 1)
        run(network, 3)
        # After arriving at its destination, the packet requested ejection.
        assert packet.eject_cycle is not None

    def test_stats_count_delivery(self):
        network = make_mesh_network()
        network.stats.open_window(0, None)
        inject_directly(network, 0, 5)
        inject_directly(network, 3, 9)
        run(network, 40)
        assert network.stats.packets_delivered == 2
        assert network.is_drained()
