"""SPIN control plane: SM transport and controller scheduling.

Implements the microarchitectural guarantees of paper Sec. IV-D:

* **No additional links** — SMs traverse the regular links (their occupancy
  is tracked separately for the Fig. 8(b) utilization split) and have
  priority over flits, so a busy link never delays an SM.
* **Bufferless traversal** — an SM is processed and forwarded in the cycle
  it arrives; on output-link contention among SMs the winner is chosen by
  class priority, then the sender's rotating dynamic priority, and every
  loser is dropped (the initiator FSMs recover via timeouts).
* **Distributed** — there is no central coordinator; this class is only the
  simulation-level event plumbing between per-router controllers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.config import SpinParams
from repro.core.controller import SpinController
from repro.core.executor import SpinExecutor
from repro.core.priority import RotatingPriority
from repro.errors import ProtocolError


class SpinFramework:
    """The SPIN recovery control plane for one network."""

    def __init__(self, params: SpinParams) -> None:
        self.params = params
        self.network = None
        self.stats = None
        self.priority = None
        self.controllers: List[SpinController] = []
        self.executor = SpinExecutor(self)
        #: arrival cycle -> [(router, inport, sm)]
        self._arrivals: Dict[int, List[Tuple[int, int, object]]] = defaultdict(list)
        #: SMs emitted this cycle, pending contention resolution.
        self._outbox: List[Tuple[int, int, object]] = []
        self.max_probe_path = 0
        #: When true, each spin is labelled true-deadlock vs false-positive
        #: using the ground-truth wait-graph (Fig. 9).  Costs CPU time.
        self.collect_ground_truth = False

    # ------------------------------------------------------------------
    # Control-plane lifecycle
    # ------------------------------------------------------------------
    def bind(self, network) -> None:
        self.network = network
        self.stats = network.stats
        num_routers = len(network.routers)
        self.priority = RotatingPriority(num_routers, self.params.epoch_length)
        self.controllers = [
            SpinController(router, self) for router in network.routers
        ]
        self.max_probe_path = self.params.probe_path_factor * num_routers
        # Watchdog round-trip bound (docs/FAULTS.md): the longest loop a
        # probe can confirm has at most max_probe_path hops, each costing
        # one link traversal plus one router pipeline — the theorem's
        # loop-delay bound.  An SM round trip that outlives this bound (plus
        # margin) was lost and may be retried.
        max_link_latency = max(
            (link.latency for link in network.links.values()), default=1)
        self.sm_rtt_bound = self.max_probe_path * (
            max_link_latency + network.config.router_latency)

    def phase_control(self, cycle: int) -> None:
        # 1. Spins scheduled for this cycle happen before anything else.
        self.executor.execute(cycle)
        # 2. Deliver and process SM arrivals, highest class priority first.
        arrivals = self._arrivals.pop(cycle, None)
        if arrivals:
            by_router: Dict[int, list] = defaultdict(list)
            for router_id, inport, sm in arrivals:
                by_router[router_id].append((inport, sm))
            for router_id in sorted(by_router):
                batch = by_router[router_id]
                if len(batch) > 1:
                    batch.sort(key=lambda item: (
                        -item[1].class_priority,
                        -self.priority.dynamic_priority(item[1].sender,
                                                        cycle),
                        item[0],
                    ))
                controller = self.controllers[router_id]
                for inport, sm in batch:
                    controller.on_sm(sm, inport, cycle)
        # 3. Detection counters and initiator timeouts tick.
        for controller in self.controllers:
            controller.tick(cycle)
        # 4. Resolve output-link contention among SMs emitted this cycle.
        self._resolve_outbox(cycle)

    # ------------------------------------------------------------------
    # SM transport
    # ------------------------------------------------------------------
    def send_sm(self, router_id: int, outport: int, sm, now: int) -> None:
        """Emit an SM from a router's output port this cycle."""
        self._outbox.append((router_id, outport, sm))

    def _resolve_outbox(self, now: int) -> None:
        if not self._outbox:
            return
        by_link: Dict[Tuple[int, int], list] = defaultdict(list)
        for router_id, outport, sm in self._outbox:
            by_link[(router_id, outport)].append(sm)
        self._outbox = []
        injector = self.network.fault_injector
        for (router_id, outport), sms in by_link.items():
            router = self.network.routers[router_id]
            link = router.out_links.get(outport)
            if link is None:
                raise ProtocolError(
                    f"SM emitted on missing port {outport} of router "
                    f"{router_id}", router=router_id, port=outport, cycle=now)
            if len(sms) == 1:
                # Uncontended port (the overwhelmingly common case): the
                # priority comparison has a single competitor.
                winner = sms[0]
            else:
                winner = max(sms, key=lambda sm: (
                    sm.class_priority,
                    self.priority.dynamic_priority(sm.sender, now),
                    -sm.sender,
                ))
                for sm in sms:
                    if sm is not winner:
                        self.stats.count(f"{sm.kind}s_dropped_contention")
            if not link.up:
                # Fail-stop link: the SM is lost; initiator watchdogs and
                # the kill/abort machinery recover (docs/FAULTS.md).
                self.stats.count("sm_dropped")
                self.stats.count(f"sm_dropped_{winner.kind}")
                self.stats.count(f"{winner.kind}s_dropped_dead_link")
                continue
            extra_delay = 0
            if injector is not None:
                verdict = injector.filter_sm(winner, link, now)
                if verdict is None:
                    continue  # dropped (the injector counted it)
                winner, extra_delay = verdict
            link.record_sm()
            neighbor, dst_inport = router.out_neighbors[outport]
            self._arrivals[now + link.latency + extra_delay].append(
                (neighbor.id, dst_inport, winner))

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def on_probe_sent(self, router_id: int, now: int) -> None:
        self.stats.count("probes_sent")

    # ------------------------------------------------------------------
    # Introspection (tests, reports)
    # ------------------------------------------------------------------
    def controller_of(self, router_id: int) -> SpinController:
        """The SPIN controller attached to a router."""
        return self.controllers[router_id]

    def frozen_vc_count(self) -> int:
        """Number of currently frozen VCs across the network."""
        count = 0
        for router in self.network.routers:
            for _, vcs in router.all_inports():
                count += sum(1 for vc in vcs if vc.frozen)
        return count
