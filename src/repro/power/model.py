"""Analytical area, power and energy models.

The structural model is

    area(V, R)  = A_BUFFER * V * R * (depth/5) * (bits/128)
                + A_CROSSBAR * R^2 * (bits/128)
                + A_FIXED
    power(V, R) = P_BUFFER * V * R * ... + P_CROSSBAR * R^2 * ... + P_FIXED

with V = VCs per port and R = router radix (network ports + local ports).
The constants are solved so the model lands on the paper's published
synthesis ratios simultaneously:

* mesh (R=5):   1-VC router 52% less area / 50% less power than 3-VC,
                36% / 34% less than 2-VC;
* dragonfly (R=16): 1-VC router 53% less area / 55% less power than 3-VC;
* Fig. 10 (3-VC mesh, normalized to west-first): SPIN +4%,
  Static Bubble +10%, Escape-VC +100%.

``tests/unit/test_power_model.py`` asserts each of those anchor points, so
the calibration is falsifiable rather than decorative (DESIGN.md
substitution note 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.modules import loop_buffer_bits

#: Per-(VC x port) buffer area at the reference depth/width, arbitrary units.
A_BUFFER = 1000.0
#: Crossbar area per port^2.
A_CROSSBAR = 35.24
#: VC-independent logic (allocators, pipeline registers, routing logic).
A_FIXED = 3349.0

#: Per-(VC x port) buffer leakage+clock power at reference sizing.
P_BUFFER = 1000.0
#: Crossbar power per port^2.
P_CROSSBAR = 22.47
#: VC-independent power.
P_FIXED = 4438.0

#: Storage area per bit, consistent with A_BUFFER for a 5x128-bit buffer.
AREA_PER_BIT = A_BUFFER / (5 * 128)

# SPIN control modules (Table II), calibrated to a combined +4% on a 3-VC
# radix-5 mesh router (Fig. 10).
SPIN_FSM_AREA = 100.0
SPIN_PROBE_MANAGER_AREA_PER_PORT = 40.0
SPIN_MOVE_MANAGER_AREA = 170.0

# Static Bubble: one packet-deep recovery buffer plus detection/token logic,
# calibrated to +10% (Fig. 10).
STATIC_BUBBLE_LOGIC_AREA = 823.0

# Escape-VC: escape buffers plus per-port/per-VC escape routing tables,
# calibrated to +100% (Fig. 10).
ESCAPE_TABLE_AREA_PER_PORT_VC = 949.0

# Dynamic energy per flit-event, arbitrary energy units.
E_BUFFER_WRITE = 1.0
E_BUFFER_READ = 0.8
E_CROSSBAR = 0.6
E_LINK = 1.2
E_SM_HOP = 0.2
#: Static power is proportional to area; energy = power x cycles.
STATIC_POWER_PER_AREA = 1e-4


@dataclass(frozen=True)
class RouterSpec:
    """Physical parameters of one router design point.

    Attributes:
        radix: Total ports (network + local).
        vcs: VCs per port (total across vnets).
        buffer_depth: Flits per VC buffer.
        flit_bits: Link/flit width in bits.
    """

    radix: int
    vcs: int
    buffer_depth: int = 5
    flit_bits: int = 128

    @property
    def _depth_scale(self) -> float:
        return (self.buffer_depth / 5.0) * (self.flit_bits / 128.0)


class AreaModel:
    """Router area in calibrated arbitrary units."""

    def router_area(self, spec: RouterSpec) -> float:
        """Baseline router area (buffers + crossbar + fixed logic)."""
        width = self.flit_width_scale(spec)
        return (
            A_BUFFER * spec.vcs * spec.radix * spec._depth_scale
            + A_CROSSBAR * spec.radix ** 2 * width
            + A_FIXED
        )

    @staticmethod
    def flit_width_scale(spec: RouterSpec) -> float:
        return spec.flit_bits / 128.0

    def spin_overhead(self, spec: RouterSpec, num_routers: int) -> float:
        """Area of the SPIN modules (Table II) for one router."""
        loop_buffer = AREA_PER_BIT * loop_buffer_bits(spec.radix, num_routers)
        return (
            SPIN_FSM_AREA
            + SPIN_PROBE_MANAGER_AREA_PER_PORT * spec.radix
            + SPIN_MOVE_MANAGER_AREA
            + loop_buffer
        )

    def static_bubble_overhead(self, spec: RouterSpec) -> float:
        """Extra central recovery buffer + token/detection logic."""
        packet_buffer = AREA_PER_BIT * spec.buffer_depth * spec.flit_bits
        return packet_buffer + SPIN_FSM_AREA + STATIC_BUBBLE_LOGIC_AREA

    def escape_vc_overhead(self, spec: RouterSpec) -> float:
        """Escape buffers plus escape routing tables.

        Models the paper's synthesized escape-VC design, which doubles
        router area relative to plain west-first at the same VC count.
        """
        escape_buffers = A_BUFFER * spec.radix * spec._depth_scale
        tables = ESCAPE_TABLE_AREA_PER_PORT_VC * spec.radix * spec.vcs
        return escape_buffers + tables

    def design_area(self, design: str, spec: RouterSpec,
                    num_routers: int = 64) -> float:
        """Area of a named Fig. 10 design point."""
        base = self.router_area(spec)
        if design in ("westfirst", "xy", "baseline"):
            return base
        if design == "spin":
            return base + self.spin_overhead(spec, num_routers)
        if design == "static_bubble":
            return base + self.static_bubble_overhead(spec)
        if design == "escape_vc":
            return base + self.escape_vc_overhead(spec)
        raise ValueError(f"unknown design {design!r}")


class EnergyModel:
    """Router power (calibrated units) and dynamic energy accounting."""

    def router_power(self, spec: RouterSpec) -> float:
        """Relative router power (leakage + clock tree), Sec. VI ratios."""
        width = spec.flit_bits / 128.0
        return (
            P_BUFFER * spec.vcs * spec.radix * spec._depth_scale
            + P_CROSSBAR * spec.radix ** 2 * width
            + P_FIXED
        )

    def flit_hop_energy(self) -> float:
        """Dynamic energy of one flit traversing one hop."""
        return E_BUFFER_WRITE + E_BUFFER_READ + E_CROSSBAR + E_LINK

    def sm_hop_energy(self) -> float:
        """Dynamic energy of one SM link traversal."""
        return E_SM_HOP

    def static_energy(self, total_area: float, cycles: int) -> float:
        """Leakage energy of the whole network over a run."""
        return STATIC_POWER_PER_AREA * total_area * cycles


def network_energy(network, spec: RouterSpec, cycles: int,
                   extra_area_per_router: float = 0.0) -> float:
    """Total network energy of a finished run (dynamic + static)."""
    model = EnergyModel()
    area_model = AreaModel()
    flit_hops = network.stats.events.get("flit_hops", 0)
    sm_hops = sum(link.sm_cycles for link in network.links.values())
    dynamic = (flit_hops * model.flit_hop_energy()
               + sm_hops * model.sm_hop_energy())
    per_router = area_model.router_area(spec) + extra_area_per_router
    static = model.static_energy(per_router * len(network.routers), cycles)
    return dynamic + static


def network_edp(network, spec: RouterSpec, cycles: int,
                extra_area_per_router: float = 0.0) -> float:
    """Network energy-delay product: total energy x mean packet latency."""
    energy = network_energy(network, spec, cycles, extra_area_per_router)
    delay = network.stats.latency().mean or 1.0
    return energy * delay
