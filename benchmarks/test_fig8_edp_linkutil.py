"""Fig. 8 — (a) network EDP under PARSEC, (b) link utilization split.

(a) EscapeVC-3VC vs MinAdaptive-2VC-SPIN over coherence-style PARSEC proxy
    traffic, EDP normalized to EscapeVC.  Paper: SPIN with one fewer VC per
    port gives ~18% lower network EDP at identical performance.

(b) Mean link-cycle split between flits, SPIN special messages and idle for
    a 3-VC SPIN mesh at low/medium/high load.  Paper: SM share ~4% at
    medium load, <5% combined everywhere — the links are either idle or
    carrying flits at almost all times.
"""

from repro.config import NetworkConfig, SpinParams
from repro.harness.tables import format_table
from repro.network.network import Network
from repro.power.model import RouterSpec, network_edp
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.routing.escape import EscapeVcRouting
from repro.sim.engine import Simulator
from repro.topology.mesh import MeshTopology
from repro.traffic.generator import SyntheticTraffic
from repro.traffic.parsec import PARSEC_PROFILES, ParsecWorkload
from repro.traffic.patterns import make_pattern

from benchmarks._common import (
    MESH_SIDE,
    TDD,
    run_once,
    scale,
    sim_config,
    write_result,
)

BENCHMARKS = scale(
    ["canneal", "swaptions"],
    ["blackscholes", "bodytrack", "canneal", "dedup", "fluidanimate",
     "streamcluster", "swaptions", "x264"],
    list(PARSEC_PROFILES),
)
VNETS = 3


def run_parsec(benchmark_name, routing_factory, vcs, spin):
    sim = sim_config()
    network = Network(MeshTopology(MESH_SIDE, MESH_SIDE),
                      NetworkConfig(vcs_per_vnet=vcs, num_vnets=VNETS),
                      routing_factory(), spin=spin, seed=3)
    stop = sim.warmup_cycles + sim.measure_cycles
    network.stats.open_window(sim.warmup_cycles, stop)
    workload = ParsecWorkload(network, PARSEC_PROFILES[benchmark_name],
                              seed=3, stop_at=stop)
    simulator = Simulator()
    simulator.register(workload)
    simulator.register(network)
    simulator.run(sim.total_cycles)
    spec = RouterSpec(radix=5, vcs=vcs * VNETS)
    return network, network_edp(network, spec, cycles=sim.total_cycles)


def run_edp_experiment():
    rows = []
    ratios = []
    for name in BENCHMARKS:
        escape_net, escape_edp = run_parsec(
            name, lambda: EscapeVcRouting(3), 3, None)
        spin_net, spin_edp = run_parsec(
            name, lambda: MinimalAdaptiveRouting(3), 2, SpinParams(tdd=128))
        ratio = spin_edp / escape_edp
        ratios.append(ratio)
        rows.append([name,
                     round(escape_net.stats.latency().mean, 1),
                     round(spin_net.stats.latency().mean, 1),
                     ratio])
    mean_ratio = sum(ratios) / len(ratios)
    rows.append(["AVERAGE", "", "", mean_ratio])
    table = format_table(
        ["PARSEC benchmark", "EscapeVC-3VC latency",
         "SPIN-2VC latency", "EDP (normalized)"],
        rows,
        title="Fig. 8(a): network EDP, MinAdaptive 2VC SPIN normalized to "
              "EscapeVC 3VC (PARSEC proxy traffic)")
    return table, mean_ratio, rows


def run_linkutil_experiment():
    # The paper's 0.01 / 0.2 / 0.5 are low / medium / high load relative to
    # its substrate's saturation (~0.5 for the 3-VC wormhole mesh).  Our
    # packet-atomic VCT substrate saturates lower, so high load is scaled
    # accordingly; tDD stays at the paper's 128 (the probe rate, and hence
    # the SM utilization this figure measures, depends directly on it).
    sim = sim_config()
    rows = []
    # 0.01 / 0.15 / 0.30 are low / medium / high relative to this
    # substrate's saturation; 0.45 is deadlock-dominated overload, shown
    # for completeness (beyond the paper's measured regime).
    for rate in (0.01, 0.15, 0.30, 0.45):
        network = Network(MeshTopology(MESH_SIDE, MESH_SIDE),
                          NetworkConfig(vcs_per_vnet=3),
                          MinimalAdaptiveRouting(5),
                          spin=SpinParams(tdd=128), seed=5)
        stop = sim.warmup_cycles + sim.measure_cycles
        network.stats.open_window(sim.warmup_cycles, stop)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", network.topology.num_nodes),
            rate, seed=5, stop_at=stop)
        simulator = Simulator()
        simulator.register(traffic)
        simulator.register(network)
        simulator.run(sim.warmup_cycles)
        network.reset_link_utilization()
        simulator.run(sim.measure_cycles)
        flit, sm, idle = network.mean_link_utilization()
        rows.append([rate, round(100 * flit, 2), round(100 * sm, 2),
                     round(100 * idle, 2)])
    table = format_table(
        ["Injection rate", "Flit %", "Special msg %", "Idle %"],
        rows,
        title="Fig. 8(b): mean link utilization split "
              "(MinAdaptive 3VC + SPIN, uniform random)")
    return table, rows


def test_fig8a_edp(benchmark):
    table, mean_ratio, rows = run_once(benchmark, run_edp_experiment)
    write_result("fig8a_parsec_edp", table)
    # Paper: ~18% lower EDP on average; assert the direction and rough size.
    assert mean_ratio < 0.95, f"SPIN 2VC should cut EDP (got {mean_ratio})"
    assert mean_ratio > 0.5, "EDP cut should come from 1 fewer VC, not magic"
    # Identical application performance: latencies within 15%.
    for name, escape_lat, spin_lat, _ in rows[:-1]:
        assert abs(spin_lat - escape_lat) / max(escape_lat, 1) < 0.15, name


def test_fig8b_link_utilization(benchmark):
    table, rows = run_once(benchmark, run_linkutil_experiment)
    write_result("fig8b_link_utilization", table)
    by_rate = {row[0]: row for row in rows}
    # Low load: links mostly idle, no SMs at all.
    assert by_rate[0.01][2] == 0.0
    assert by_rate[0.01][3] > 90
    # SM share stays under 5% of link cycles throughout the operating
    # regime (paper Sec. VI-E2); the 0.45 overload row is outside it.
    assert all(row[2] < 5.0 for row in rows if row[0] <= 0.30)
    # Flit utilization rises with load; idle time rises again once the
    # network becomes deadlock-dominated (the paper's "links are mostly
    # idle in case of frequent deadlocks" observation).
    assert by_rate[0.15][1] > by_rate[0.01][1]
    assert by_rate[0.45][3] > by_rate[0.30][3]
