"""Telemetry for SPIN simulations: metrics, spans, traces, reports.

The observability counterpart of :mod:`repro.verify` — same zero-cost
simulator-observer hook, but *recording* instead of asserting.  Layers
(see docs/TELEMETRY.md):

* :mod:`repro.telemetry.registry` — typed metric families (counters,
  gauges, histograms) keyed by component.
* :mod:`repro.telemetry.spans` — SPIN control-plane span reconstruction
  from FSM transitions (detection/recovery latency per episode).
* :mod:`repro.telemetry.observer` — the per-cycle recorder; enabled via
  ``ExperimentSpec(telemetry=True)``, ``--telemetry``, or the
  ``REPRO_TELEMETRY`` environment variable.
* :mod:`repro.telemetry.export` — JSONL event log and Chrome
  ``trace_event`` exporters plus the dependency-free trace validator.
* :mod:`repro.telemetry.report` — ``repro-sim report`` analytics: span
  tables, hot links, wedge timeline, occupancy heatmap.
* :mod:`repro.telemetry.campaign` — campaign durability counters
  (resumes, retries, worker respawns) mirrored from
  :mod:`repro.harness.campaign` (docs/CAMPAIGNS.md).
* :mod:`repro.telemetry.live` — the live observability plane: streaming
  worker frames, supervisor aggregation, rolling ``status.json``
  (docs/OBSERVE.md).
* :mod:`repro.telemetry.watch` / :mod:`repro.telemetry.prometheus` —
  ``cli watch`` rendering and Prometheus text exposition over the live
  status.
"""

from repro.telemetry.campaign import (
    CAMPAIGN_COUNTER_FAMILIES,
    campaign_counter_totals,
    record_campaign_counters,
)
from repro.telemetry.export import (
    CHROME_FORMAT,
    JSONL_FORMAT,
    build_records,
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    write_jsonl,
)
from repro.telemetry.live import (
    STATUS_FORMAT,
    STREAM_FORMAT,
    FrameDecoder,
    LiveStatusPlane,
    StreamAggregator,
    TelemetryShipper,
    encode_frame,
    ensure_worker_shipper,
    read_stream_log,
    stream_chrome_trace,
    stream_summary,
)
from repro.telemetry.observer import (
    TelemetryConfig,
    TelemetryObserver,
    config_from_env_value,
    telemetry_from_env,
)
from repro.telemetry.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.report import TraceReport
from repro.telemetry.spans import SpanTracer, SpinSpan

__all__ = [
    "CAMPAIGN_COUNTER_FAMILIES",
    "CHROME_FORMAT",
    "JSONL_FORMAT",
    "STATUS_FORMAT",
    "STREAM_FORMAT",
    "Counter",
    "FrameDecoder",
    "Gauge",
    "Histogram",
    "LiveStatusPlane",
    "MetricsRegistry",
    "SpanTracer",
    "SpinSpan",
    "StreamAggregator",
    "TelemetryConfig",
    "TelemetryObserver",
    "TelemetryShipper",
    "TraceReport",
    "build_records",
    "campaign_counter_totals",
    "chrome_trace",
    "config_from_env_value",
    "encode_frame",
    "ensure_worker_shipper",
    "read_jsonl",
    "read_stream_log",
    "record_campaign_counters",
    "stream_chrome_trace",
    "stream_summary",
    "telemetry_from_env",
    "validate_chrome_trace",
    "write_jsonl",
]
