"""Dimension-order (XY) routing for meshes and tori.

The canonical application of Dally's theory on a mesh: resolving the X
dimension completely before Y removes half the turns and makes the channel
dependency graph acyclic (verified in ``tests/unit/test_cdg.py``).  On a
torus the wrap-around channels still close dependency cycles, which is why
tori need datelines or bubble flow control; we include the torus case mainly
for the CDG analysis and Table I discussion.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import ConfigurationError
from repro.network.packet import Packet
from repro.routing.base import RoutingAlgorithm
from repro.topology.mesh import EAST, WEST


class DimensionOrderRouting(RoutingAlgorithm):
    """Deterministic XY routing: exhaust X hops, then Y hops."""

    name = "XY"
    minimal = True
    max_misroutes = 0
    theory = "Dally"

    def _setup(self) -> None:
        if not hasattr(self.topology, "directions_toward"):
            raise ConfigurationError(
                "dimension-order routing needs a mesh-like topology")

    def candidate_outports(self, router, packet: Packet) -> Sequence[int]:
        productive = self.topology.directions_toward(
            router.id, packet.routing_target)
        x_dirs: Tuple[int, ...] = tuple(
            d for d in productive if d in (EAST, WEST))
        if x_dirs:
            return x_dirs[:1]
        return productive[:1]
