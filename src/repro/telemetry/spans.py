"""SPIN control-plane span tracing.

The paper's headline temporal claims are *episode* latencies: how long from
the tDD countdown to the probe's return (detection), from the move to the
synchronized spin (recovery), and how many spins one deadlock needs.  The
:class:`SpanTracer` reconstructs those episodes from the per-router FSM of
:mod:`repro.core.fsm` without touching the control plane: it watches each
:class:`~repro.core.controller.SpinController`'s settled state once per
cycle (from the telemetry observer, which runs *after* every component) and
turns state transitions into :class:`SpinSpan` records.

Transition grammar (initiator side)::

    DD --------------------> MOVE        span opens (probe returned; the
                                          probe was sent loop_delay cycles
                                          earlier, after a full tDD count)
    MOVE/PROBE_MOVE -------> FORWARD_PROGRESS   move round trip completed
    FORWARD_PROGRESS exit at the scheduled spin cycle   one spin performed
    FORWARD_PROGRESS ------> PROBE_MOVE  episode continues (Sec. IV-B4)
    MOVE/PROBE_MOVE -------> KILL_MOVE   recovery is being cancelled
    initiator state -------> DD/OFF      span closes

Non-initiator FROZEN residencies are traced as their own (much simpler)
spans, so a recorded trace shows *which* routers a recovery froze and for
how long.

Derived latencies (docs/TELEMETRY.md):

* ``detection_latency``  = ``tdd + loop_delay`` — the full countdown plus
  the probe round trip, directly comparable to the paper's Fig. 9/11.
* ``recovery_latency``   = close cycle − probe-send cycle — everything
  from the countdown's expiry to the FSM returning to detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.fsm import INITIATOR_STATES, SpinState

#: Span kinds emitted by the tracer.
SPAN_KINDS = ("spin_episode", "frozen")

#: Outcomes a closed ``spin_episode`` span may report.
OUTCOMES = ("recovered", "killed", "aborted")


@dataclass
class SpinSpan:
    """One reconstructed SPIN episode (or FROZEN residency) at one router.

    Attributes:
        kind: ``"spin_episode"`` (initiator) or ``"frozen"``.
        router: Router id the span belongs to.
        vnet: Virtual network the recovery is scoped to.
        start_cycle: Probe-send cycle for episodes (``move_cycle -
            loop_delay``); freeze cycle for FROZEN spans.
        move_cycle: Cycle the initiator entered MOVE (probe returned).
        loop_delay: Probe round-trip time in cycles (the theorem's loop
            delay); 0 for FROZEN spans.
        tdd: Detection threshold active during this episode.
        move_returns: Cycles at which move/probe_move round trips
            completed (FSM entered FORWARD_PROGRESS).
        spin_cycles: Cycles at which this episode's synchronized spins
            executed.
        kill_cycle: First cycle the initiator entered KILL_MOVE, if any.
        end_cycle: Cycle the span closed (None while open).
        outcome: ``"recovered"`` (>= 1 spin), ``"killed"`` (cancelled via
            kill_move before any spin), ``"aborted"`` (any other reset),
            or None while open.
        source: Initiating router id (FROZEN spans only).
    """

    kind: str
    router: int
    vnet: int = 0
    start_cycle: int = 0
    move_cycle: Optional[int] = None
    loop_delay: int = 0
    tdd: int = 0
    move_returns: List[int] = field(default_factory=list)
    spin_cycles: List[int] = field(default_factory=list)
    kill_cycle: Optional[int] = None
    end_cycle: Optional[int] = None
    outcome: Optional[str] = None
    source: Optional[int] = None

    @property
    def complete(self) -> bool:
        """Whether the span has closed."""
        return self.end_cycle is not None

    @property
    def detection_latency(self) -> int:
        """tDD countdown plus probe round trip (episodes only)."""
        return self.tdd + self.loop_delay

    @property
    def recovery_latency(self) -> Optional[int]:
        """Probe-send cycle through span close; None while open."""
        if self.end_cycle is None:
            return None
        return self.end_cycle - self.start_cycle

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe record (the ``span`` JSONL event payload)."""
        record: Dict[str, object] = {
            "kind": self.kind,
            "router": self.router,
            "vnet": self.vnet,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "outcome": self.outcome,
        }
        if self.kind == "spin_episode":
            record.update({
                "move_cycle": self.move_cycle,
                "loop_delay": self.loop_delay,
                "tdd": self.tdd,
                "detection_latency": self.detection_latency,
                "recovery_latency": self.recovery_latency,
                "move_returns": list(self.move_returns),
                "spin_cycles": list(self.spin_cycles),
                "kill_cycle": self.kill_cycle,
            })
        else:
            record["source"] = self.source
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SpinSpan":
        """Rebuild a span from :meth:`to_dict` output."""
        span = cls(kind=data["kind"], router=data["router"],
                   vnet=data.get("vnet", 0),
                   start_cycle=data.get("start_cycle", 0))
        span.end_cycle = data.get("end_cycle")
        span.outcome = data.get("outcome")
        span.source = data.get("source")
        span.move_cycle = data.get("move_cycle")
        span.loop_delay = data.get("loop_delay", 0) or 0
        span.tdd = data.get("tdd", 0) or 0
        span.move_returns = list(data.get("move_returns", ()))
        span.spin_cycles = list(data.get("spin_cycles", ()))
        span.kill_cycle = data.get("kill_cycle")
        return span


class SpanTracer:
    """Reconstructs SPIN spans from settled per-cycle FSM states.

    Drive it with :meth:`observe` once per cycle (the telemetry observer
    does); closed spans accumulate on :attr:`spans`, still-open ones on
    :attr:`open_spans`.  ``on_span_close`` (if set) fires for every closed
    span — the observer uses it to stream spans into the metrics registry
    and the event log without a second pass.
    """

    def __init__(self, spin_framework) -> None:
        self.framework = spin_framework
        self.spans: List[SpinSpan] = []
        self.on_span_close = None
        self._states: Optional[List[SpinState]] = None
        #: router id -> open initiator span.
        self._episodes: Dict[int, SpinSpan] = {}
        #: router id -> open FROZEN span.
        self._frozen: Dict[int, SpinSpan] = {}
        #: router id -> spin cycle scheduled when FORWARD_PROGRESS entered.
        self._fp_spin_cycle: Dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> List[SpinSpan]:
        """Spans still in progress (deterministic router order)."""
        spans = list(self._episodes.values()) + list(self._frozen.values())
        spans.sort(key=lambda span: (span.start_cycle, span.router))
        return spans

    def observe(self, cycle: int) -> None:
        """Fold this cycle's settled FSM states into the span model."""
        controllers = self.framework.controllers
        states = [controller.state for controller in controllers]
        previous = self._states
        self._states = states
        if previous is None:
            return
        for router_id, (before, after) in enumerate(zip(previous, states)):
            if after is before:
                continue
            self._transition(router_id, before, after, cycle,
                             controllers[router_id])

    def finish(self, cycle: int) -> None:
        """Close every still-open span at end of run (outcome stays None)."""
        for span in self.open_spans:
            span.end_cycle = cycle
            self._close(span)
        self._episodes.clear()
        self._frozen.clear()

    # ------------------------------------------------------------------
    # Transition handling
    # ------------------------------------------------------------------
    def _transition(self, router_id: int, before: SpinState,
                    after: SpinState, cycle: int, controller) -> None:
        # --- initiator episode machine ---------------------------------
        if after is SpinState.MOVE and before not in INITIATOR_STATES:
            self._open_episode(router_id, cycle, controller)
        span = self._episodes.get(router_id)
        if span is not None:
            if after is SpinState.FORWARD_PROGRESS:
                span.move_returns.append(cycle)
                self._fp_spin_cycle[router_id] = (
                    controller.spin_cycle
                    if controller.spin_cycle is not None else -1)
            if before is SpinState.FORWARD_PROGRESS:
                # The executor performs the spin (and transitions the FSM)
                # exactly at the scheduled spin cycle; any later exit is
                # the freeze-timeout escape, not a spin.
                if cycle == self._fp_spin_cycle.pop(router_id, -1):
                    span.spin_cycles.append(cycle)
            if after is SpinState.KILL_MOVE and span.kill_cycle is None:
                span.kill_cycle = cycle
            if (before in INITIATOR_STATES
                    and after not in INITIATOR_STATES):
                self._close_episode(router_id, span, cycle)
        # --- non-initiator FROZEN residencies ---------------------------
        if after is SpinState.FROZEN and before is not SpinState.FROZEN:
            self._frozen[router_id] = SpinSpan(
                kind="frozen", router=router_id,
                vnet=controller.probe_vnet, start_cycle=cycle,
                source=controller.latched_source)
        elif before is SpinState.FROZEN and after is not SpinState.FROZEN:
            frozen = self._frozen.pop(router_id, None)
            if frozen is not None:
                frozen.end_cycle = cycle
                frozen.outcome = "released"
                self._close(frozen)

    def _open_episode(self, router_id: int, cycle: int, controller) -> None:
        # A previous open episode interrupted mid-flight closes as aborted.
        stale = self._episodes.pop(router_id, None)
        if stale is not None:
            stale.end_cycle = cycle
            stale.outcome = "aborted"
            self._close(stale)
        loop_delay = controller.loop_delay
        self._episodes[router_id] = SpinSpan(
            kind="spin_episode", router=router_id,
            vnet=controller.probe_vnet,
            start_cycle=cycle - loop_delay,
            move_cycle=cycle, loop_delay=loop_delay,
            tdd=self.framework.params.tdd)

    def _close_episode(self, router_id: int, span: SpinSpan,
                       cycle: int) -> None:
        self._episodes.pop(router_id, None)
        self._fp_spin_cycle.pop(router_id, None)
        span.end_cycle = cycle
        if span.spin_cycles:
            span.outcome = "recovered"
        elif span.kill_cycle is not None:
            span.outcome = "killed"
        else:
            span.outcome = "aborted"
        self._close(span)

    def _close(self, span: SpinSpan) -> None:
        self.spans.append(span)
        if self.on_span_close is not None:
            self.on_span_close(span)
