"""Cycle-level simulation kernel: engines, clock loop, deterministic RNG."""

from repro.sim.rng import DeterministicRng
from repro.sim.engine import Simulator
from repro.sim.engine_api import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    SimulatorEngine,
    available_engines,
    build_simulation_loop,
    create_engine,
    resolve_engine_name,
)
from repro.sim.profile import (
    PROFILE_ENV,
    PROFILE_SCHEMA,
    PhaseProfiler,
    profiler_from_env,
    render_report,
)

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_ENV_VAR",
    "PROFILE_ENV",
    "PROFILE_SCHEMA",
    "DeterministicRng",
    "PhaseProfiler",
    "Simulator",
    "SimulatorEngine",
    "available_engines",
    "build_simulation_loop",
    "create_engine",
    "profiler_from_env",
    "render_report",
    "resolve_engine_name",
]
