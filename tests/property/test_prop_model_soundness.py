"""Soundness of the control-plane abstraction: the concrete simulator
never leaves the checker's enumerated space.

The model checker's guarantees are about its *abstraction*; this
property test grounds them.  For random seeds (routing tie-breaks differ
per seed) the concrete planted-loop fabric is simulated cycle by cycle,
and every per-cycle control-plane snapshot taken **while the deadlock
persists** is projected to the orientation-agnostic shape
(:func:`repro.verify.model.state.project`) and asserted to be one of the
shapes the exhaustive race-mode enumeration produced.  Once the spin
resolves the deadlock, the fabric leaves the model's domain (datapath
drain, post-recovery epilogue), so sampling stops there — the model is a
theory of the deadlock *episode*.

Kept to the 3-router ring: its race-mode space with probe_move enabled
(the concrete default) is ~2.5k states, so the enumeration is cheap and
cached once per session.
"""

from __future__ import annotations

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deadlock.waitgraph import has_deadlock
from repro.sim import create_engine
from repro.verify.model import ModelChecker
from repro.verify.model.designs import DESIGNS

DESIGN_NAME = "ring3"
MAX_EPISODE_CYCLES = 150


@functools.lru_cache(maxsize=1)
def _enumerated_shapes():
    design = DESIGNS[DESIGN_NAME]
    result = ModelChecker(
        design.model_config(probe_move_enabled=True),
        weights=design.weights(),
        persistence_bound=design.persistence_bound(),
    ).run(max_states=50_000)
    assert result.complete and result.ok
    return result.projections()


def _concrete_projection(network, plan):
    """Project live simulator state the way the model projects its own."""
    shape = []
    for router_id, _inport, _dst in plan:
        router = network.routers[router_id]
        controller = network.spin.controllers[router_id]
        frozen = any(vc.frozen for _ip, vcs in router.all_inports()
                     for vc in vcs)
        latched = controller.latched_source
        if latched is None:
            latch = "-"
        elif latched == router_id:
            latch = "self"
        else:
            latch = "other"
        shape.append((controller.state.name, frozen, latch))
    return tuple(shape)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_reachable_states_are_enumerated(seed):
    shapes = _enumerated_shapes()
    design = DESIGNS[DESIGN_NAME]
    network = design.build_network(seed=seed)
    plan = design.loop_plan(network)
    simulator = create_engine(None)
    simulator.register(network)
    sampled = 0
    for _cycle in range(MAX_EPISODE_CYCLES):
        simulator.step()
        if not has_deadlock(network, simulator.cycle):
            break
        shape = _concrete_projection(network, plan)
        assert shape in shapes, (
            f"seed {seed}: concrete control-plane state {shape} at cycle "
            f"{simulator.cycle} is outside the checker's enumerated space "
            f"— the abstraction lost a reachable state")
        sampled += 1
    else:  # pragma: no cover - would mean recovery regressed
        raise AssertionError("deadlock episode outlived the sampling window")
    # The episode is long enough to be a meaningful subset check (probe
    # round trips, move round trips, the pre-spin freeze window).
    assert sampled >= design.tdd
    assert network.stats.events.get("spins", 0) >= 1


def test_projection_spans_the_protocol_phases():
    """The enumerated shapes include detection, freezing, and commitment
    — the subset relation above is not vacuously about idle states."""
    shapes = _enumerated_shapes()
    fsm_names = {fsm for shape in shapes for fsm, _, _ in shape}
    assert {"DD", "MOVE", "FROZEN", "FORWARD_PROGRESS",
            "KILL_MOVE", "PROBE_MOVE"} <= fsm_names
    assert any(frozen for shape in shapes for _, frozen, _ in shape)
    assert any(latch == "other" for shape in shapes for _, _, latch in shape)
