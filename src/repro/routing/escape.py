"""Escape-VC routing (Duato's theory) for meshes.

VC 0 of every vnet is the *escape* channel; routing inside it follows a
deadlock-free restricted function (west-first by default, which is acyclic
on a mesh).  All other VCs are fully adaptive among minimal paths.  A packet
always prefers the adaptive VCs; when none is idle it requests the escape
VC of its escape-route port, so the acyclic escape sub-network is reachable
from every blocked state — the sufficient condition of Duato's theorem.

This is the paper's ``EscapeVC`` mesh baseline (Table III).
"""

from __future__ import annotations

from typing import Sequence

from repro.network.packet import Packet
from repro.routing.base import RoutingAlgorithm
from repro.routing.turn_model import WestFirstRouting


class EscapeVcRouting(RoutingAlgorithm):
    """Duato-style: adaptive VCs 1..V-1 plus a west-first escape VC 0."""

    name = "EscapeVC"
    minimal = True
    max_misroutes = 0
    theory = "Duato"

    def __init__(self, seed: int = 0, escape_routing=None) -> None:
        super().__init__(seed)
        #: Restricted routing function used inside the escape VC.
        self.escape_routing = escape_routing or WestFirstRouting(seed)

    def _setup(self) -> None:
        self._require_vcs(2)
        self.escape_routing.bind(self.network)

    def candidate_outports(self, router, packet: Packet) -> Sequence[int]:
        return self.productive_ports(router, packet.routing_target)

    def _escape_port(self, router, packet: Packet) -> int:
        ports = self.escape_routing.candidate_outports(router, packet)
        return ports[0]

    def select(self, router, packet: Packet, candidates: Sequence[int],
               now: int) -> int:
        adaptive = range(1, self.network.config.vcs_per_vnet)
        free = [
            port for port in candidates
            if router.downstream_has_idle(port, packet.vnet, adaptive, now)
        ]
        if free:
            packet.route_state["escape"] = False
            return free[0] if len(free) == 1 else self.rng.choice(free)
        # No adaptive VC anywhere: fall back to (or wait on) the escape path.
        packet.route_state["escape"] = True
        return self._escape_port(router, packet)

    def vc_choices(self, packet: Packet, router, outport: int) -> Sequence[int]:
        if packet.route_state.get("escape"):
            return (0,)
        return range(1, self.network.config.vcs_per_vnet)

    def wait_targets(self, router, packet: Packet, now: int):
        """Escape-aware targets: blocked packets can always use VC 0."""
        if packet.reached_phase_target(router.id):
            return []
        targets = []
        adaptive = range(1, self.network.config.vcs_per_vnet)
        for port in self.candidate_outports(router, packet):
            neighbor, dst_port = router.out_neighbors[port]
            vcs = neighbor.vnet_slice(dst_port, packet.vnet)
            targets.append((port, [vcs[i] for i in adaptive]))
        escape_port = self._escape_port(router, packet)
        neighbor, dst_port = router.out_neighbors[escape_port]
        targets.append((escape_port,
                        [neighbor.vnet_slice(dst_port, packet.vnet)[0]]))
        return targets
