"""Persisted sweep results: a small, versioned JSON schema.

Every sweep — serial or parallel — can be saved to disk and reloaded
without loss, so the benchmark trajectory (EXPERIMENTS.md) is built from
files rather than console scrollback.  The schema is deliberately
deterministic: keys are sorted and no timestamps are embedded, so two runs
of the same experiment produce *byte-identical* files regardless of worker
count (the acceptance check behind ``--jobs``).

Schema (``repro.sweep-results/v1``)::

    {
      "schema": "repro.sweep-results/v1",
      "meta": { ... caller-provided, JSON-safe, deterministic ... },
      "points": [ SweepPoint.to_dict(), ... ]
    }
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.stats.sweep import SweepPoint

#: Version tag written into (and demanded from) every results file.
RESULTS_SCHEMA = "repro.sweep-results/v1"


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Durably replace ``path`` with ``text`` — all of it or none of it.

    The text is written to a sibling temp file, fsync'd, then moved over
    the target with :func:`os.replace` (atomic on POSIX), so a crash at
    any instant leaves either the previous file or the complete new one —
    never a torn half-write.  The containing directory is fsync'd
    best-effort so the rename itself survives power loss.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(str(path.parent) or ".", os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent (e.g. NFS)
        pass
    return path


def results_to_json(points: List[SweepPoint],
                    meta: Optional[Dict[str, object]] = None) -> str:
    """Serialize points (plus optional metadata) to the canonical JSON text.

    The text is fully deterministic for identical inputs: sorted keys,
    fixed two-space indentation, trailing newline.
    """
    document = {
        "schema": RESULTS_SCHEMA,
        "meta": meta or {},
        "points": [point.to_dict() for point in points],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def save_results(path: Union[str, Path], points: List[SweepPoint],
                 meta: Optional[Dict[str, object]] = None) -> Path:
    """Write a results file atomically; returns the resolved path.

    Uses :func:`atomic_write_text`, so a crash mid-save can never leave a
    half-written artifact — readers see the old file or the new file.
    """
    return atomic_write_text(path, results_to_json(points, meta))


def results_from_json(text: str) -> Tuple[List[SweepPoint], Dict[str, object]]:
    """Parse canonical JSON text back into ``(points, meta)``."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"results file is not valid JSON ({exc})") from None
    if not isinstance(document, dict):
        raise ConfigurationError("results file must hold a JSON object",
                                 got=type(document).__name__)
    schema = document.get("schema")
    if schema != RESULTS_SCHEMA:
        raise ConfigurationError(
            "unsupported results schema", got=schema,
            expected=RESULTS_SCHEMA)
    raw_points = document.get("points")
    if not isinstance(raw_points, list):
        raise ConfigurationError("results file carries no points list")
    points = [SweepPoint.from_dict(raw) for raw in raw_points]
    meta = document.get("meta") or {}
    if not isinstance(meta, dict):
        raise ConfigurationError("results meta must be an object",
                                 got=type(meta).__name__)
    return points, meta


def load_results(path: Union[str, Path]
                 ) -> Tuple[List[SweepPoint], Dict[str, object]]:
    """Read a results file back into ``(points, meta)``."""
    return results_from_json(Path(path).read_text())
