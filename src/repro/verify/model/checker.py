"""Explicit-state BFS over the abstract SPIN control plane.

:class:`ModelChecker` exhaustively enumerates every canonicalized global
state reachable from the post-formation state (all counters armed on a
deadlocked loop), checking the safety properties of
:mod:`repro.verify.model.properties` on every transition.  Breadth-first
order makes the first violation's trace a *minimal* counterexample.

The explored graph is retained (states indexed densely, edges labeled
with their action), which is what the bounded-liveness analysis, the
soundness cross-check and the ``cli model-check`` state-space summary
consume afterwards.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.verify.model.properties import (
    ActionWeights,
    LivenessReport,
    PropertyViolation,
    analyze_liveness,
    check_transition,
)
from repro.verify.model.state import (
    GlobalState,
    canonical,
    initial_state,
    project,
)
from repro.verify.model.transitions import ModelConfig, successors

#: Progress callback signature: (visited, frontier, depth).
ProgressFn = Callable[[int, int, int], None]


@dataclass(frozen=True)
class Counterexample:
    """A minimal violating run: alternating actions and global states.

    ``trace[k] = (action, state)`` with ``trace[-1]`` the violating
    transition.  Action labels name loop positions in the *pre-rotation*
    frame of each step (states are stored canonicalized), which is enough
    to read the protocol mistake off the trace.
    """

    violation: PropertyViolation
    initial: GlobalState
    trace: Tuple[Tuple[str, GlobalState], ...]

    @property
    def depth(self) -> int:
        return len(self.trace)

    def describe(self) -> str:
        lines = [f"property {self.violation.prop} violated "
                 f"({self.violation.detail}) after {self.depth} steps:"]
        for step, (action, state) in enumerate(self.trace, 1):
            routers = " ".join(
                f"{r.fsm.name}{'*' if r.frozen_by >= 0 else ''}"
                for r in state.routers)
            flight = ",".join(f"{m.kind}@{m.at}" for m in state.messages)
            lines.append(f"  {step:2d}. {action:34s} [{routers}]"
                         + (f" inflight: {flight}" if flight else ""))
        return "\n".join(lines)


@dataclass
class CheckResult:
    """Everything one exhaustive run established."""

    config: ModelConfig
    visited: int = 0
    transitions: int = 0
    max_depth: int = 0
    complete: bool = True
    counterexample: Optional[Counterexample] = None
    liveness: Optional[LivenessReport] = None
    #: Every (before, after) FSM state-name pair the protocol exhibited —
    #: the checker's observed legality relation, which the fsm.py audit
    #: tests compare against the invariant catalog.
    fsm_transitions_seen: Set[Tuple[str, str]] = field(default_factory=set)
    action_counts: Dict[str, int] = field(default_factory=dict)
    states: List[GlobalState] = field(default_factory=list)
    edges: List[Tuple[int, int, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def projections(self) -> Set[tuple]:
        """Orientation-agnostic per-router projections of every state
        (all rotations), the superset the soundness cross-check tests
        concrete simulator states against."""
        shapes: Set[tuple] = set()
        for state in self.states:
            for shift in range(state.size):
                shapes.add(project(state.rotated(shift)))
        return shapes

    def summary(self) -> Dict[str, object]:
        """JSON-ready state-space summary (the CI artifact)."""
        out: Dict[str, object] = {
            "format": "repro.model-check/v1",
            "loop_size": self.config.loop_size,
            "probe_budget": self.config.probe_budget,
            "drop_budget": self.config.drop_budget,
            "initiators": self.config.initiators,
            "probe_move": self.config.probe_move_enabled,
            "mutation": self.config.mutation,
            "visited_states": self.visited,
            "transitions": self.transitions,
            "max_depth": self.max_depth,
            "complete": self.complete,
            "ok": self.ok,
            "action_counts": dict(sorted(self.action_counts.items())),
            "fsm_transitions_seen": sorted(
                list(pair) for pair in self.fsm_transitions_seen),
        }
        if self.counterexample is not None:
            cex = self.counterexample
            out["counterexample"] = {
                "property": cex.violation.prop,
                "invariant": cex.violation.invariant,
                "detail": cex.violation.detail,
                "depth": cex.depth,
                "actions": [action for action, _ in cex.trace],
            }
        if self.liveness is not None:
            live = self.liveness
            out["liveness"] = {
                "acyclic": live.acyclic,
                "live": live.live,
                "terminal_states": live.terminal_states,
                "resolved_terminals": live.resolved_terminals,
                "degraded_terminals": live.degraded_terminals,
                "stuck_terminals": len(live.stuck_terminals),
                "detection_steps": live.detection_steps,
                "detection_cycles": live.detection_cycles,
                "recovery_steps": live.recovery_steps,
                "recovery_cycles": live.recovery_cycles,
                "persistence_bound": live.persistence_bound,
                "bounds_proved": live.bounds_proved,
            }
        return out


class ModelChecker:
    """BFS with rotation symmetry reduction and a frontier/visited store."""

    def __init__(self, config: ModelConfig,
                 weights: Optional[ActionWeights] = None,
                 persistence_bound: Optional[int] = None) -> None:
        self.config = config
        self.weights = weights
        self.persistence_bound = persistence_bound

    def run(self, max_depth: Optional[int] = None,
            max_states: Optional[int] = None,
            progress: Optional[ProgressFn] = None,
            progress_every: int = 1000) -> CheckResult:
        config = self.config
        result = CheckResult(config=config)
        root = canonical(initial_state(
            config.loop_size, probe_budget=config.probe_budget,
            drop_budget=config.drop_budget, initiators=config.initiators))

        index: Dict[GlobalState, int] = {root: 0}
        result.states.append(root)
        depth_of = [0]
        parent: List[Optional[Tuple[int, str]]] = [None]
        frontier: deque = deque([0])

        while frontier:
            src = frontier.popleft()
            state = result.states[src]
            depth = depth_of[src]
            if max_depth is not None and depth >= max_depth:
                result.complete = False
                continue
            for action, raw_next in successors(state, config):
                result.transitions += 1
                kind = action.split("@")[0]
                result.action_counts[kind] = \
                    result.action_counts.get(kind, 0) + 1
                for before, after in zip(state.routers, raw_next.routers):
                    if after.fsm is not before.fsm:
                        result.fsm_transitions_seen.add(
                            (before.fsm.name, after.fsm.name))
                violations = check_transition(state, action, raw_next)
                if violations:
                    result.counterexample = self._reconstruct(
                        result, parent, src, action, raw_next,
                        violations[0])
                    result.visited = len(result.states)
                    result.max_depth = max(result.max_depth, depth + 1)
                    return result
                nxt = canonical(raw_next)
                dst = index.get(nxt)
                if dst is None:
                    dst = len(result.states)
                    index[nxt] = dst
                    result.states.append(nxt)
                    depth_of.append(depth + 1)
                    parent.append((src, action))
                    result.max_depth = max(result.max_depth, depth + 1)
                    if max_states is not None \
                            and len(result.states) >= max_states:
                        result.complete = False
                        result.visited = len(result.states)
                        return result
                    frontier.append(dst)
                    if progress is not None \
                            and dst % progress_every == 0:
                        progress(len(result.states), len(frontier),
                                 result.max_depth)
                result.edges.append((src, dst, action))

        result.visited = len(result.states)
        if progress is not None:
            progress(result.visited, 0, result.max_depth)
        if result.complete and result.ok:
            result.liveness = analyze_liveness(
                result.edges, result.states, weights=self.weights,
                persistence_bound=self.persistence_bound,
                require_resolution=(config.initiators == 1
                                    and config.drop_budget == 0))
        return result

    @staticmethod
    def _reconstruct(result: CheckResult,
                     parent: List[Optional[Tuple[int, str]]],
                     src: int, action: str, violating: GlobalState,
                     violation: PropertyViolation) -> Counterexample:
        steps: List[Tuple[str, GlobalState]] = [(action, violating)]
        node = src
        while parent[node] is not None:
            prev, label = parent[node]
            steps.append((label, result.states[node]))
            node = prev
        steps.reverse()
        return Counterexample(violation=violation,
                              initial=result.states[0],
                              trace=tuple(steps))
