"""Two-level fat tree (leaf/spine Clos), the datacenter staple.

``num_leaves`` leaf switches each connect to every one of ``num_spines``
spine switches; terminals attach only to leaves.  Any leaf-to-leaf route
is leaf -> (any spine) -> leaf, giving ``num_spines``-way path diversity
that fully adaptive routing (enabled deadlock-free by SPIN) can exploit,
while up*/down* routing is naturally minimal here (the topology is its own
spanning-tree closure — a useful contrast case in the tests).

Router ids: leaves ``0 .. L-1``, spines ``L .. L+S-1``.
Ports: leaf port ``s`` reaches spine ``s``; spine port ``l`` reaches leaf
``l``.
"""

from __future__ import annotations

from typing import List

from repro.errors import TopologyError
from repro.topology.base import LinkSpec, Topology


class FatTreeTopology(Topology):
    """Leaf-spine fat tree with ``terminals_per_leaf`` nodes per leaf."""

    name = "fattree"

    def __init__(self, num_leaves: int, num_spines: int,
                 terminals_per_leaf: int = 2, link_latency: int = 1) -> None:
        super().__init__()
        if num_leaves < 2 or num_spines < 1:
            raise TopologyError("fat tree needs >= 2 leaves and >= 1 spine")
        if terminals_per_leaf < 1:
            raise TopologyError("terminals_per_leaf must be >= 1")
        self.num_leaves = num_leaves
        self.num_spines = num_spines
        self.terminals_per_leaf = terminals_per_leaf
        self.link_latency = link_latency
        self._links = self._build_links()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self.num_leaves + self.num_spines

    @property
    def num_nodes(self) -> int:
        return self.num_leaves * self.terminals_per_leaf

    def router_of_node(self, node: int) -> int:
        return node // self.terminals_per_leaf

    def is_leaf(self, router: int) -> bool:
        """Whether a router is a leaf switch."""
        return router < self.num_leaves

    def spine_id(self, index: int) -> int:
        """Router id of the ``index``-th spine."""
        return self.num_leaves + index

    def min_hops(self, src_router: int, dst_router: int) -> int:
        if src_router == dst_router:
            return 0
        src_leaf = self.is_leaf(src_router)
        dst_leaf = self.is_leaf(dst_router)
        if src_leaf and dst_leaf:
            return 2
        if src_leaf != dst_leaf:
            return 1
        return 2  # spine to spine via any leaf

    def links(self) -> List[LinkSpec]:
        return self._links

    def _build_links(self) -> List[LinkSpec]:
        links = []
        for leaf in range(self.num_leaves):
            for spine_index in range(self.num_spines):
                spine = self.spine_id(spine_index)
                links.append(LinkSpec(leaf, spine_index, spine, leaf,
                                      self.link_latency))
                links.append(LinkSpec(spine, leaf, leaf, spine_index,
                                      self.link_latency))
        return links
