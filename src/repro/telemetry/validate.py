"""CLI entry point for Chrome-trace validation.

``python -m repro.telemetry.validate <trace.json> [...]`` — exits 0 when
every file is a structurally valid ``repro.chrome-trace/v1`` document
(:func:`repro.telemetry.export.validate_chrome_trace`), 1 otherwise.
Lives outside :mod:`repro.telemetry.export` so ``-m`` execution does not
re-import a module the package ``__init__`` already loaded.
"""

from repro.telemetry.export import main

if __name__ == "__main__":
    raise SystemExit(main())
