"""Topology abstraction.

A topology is a set of routers connected by bidirectional channels.  Each
channel occupies one *port* on each endpoint router; the same port index is
used for the inbound and outbound direction of that channel, so
``neighbors(r)[p] == (s, q, lat)`` always implies ``neighbors(s)[q] == (r, p, lat)``.

Terminal nodes (the entities that inject and eject traffic) attach to routers
via dedicated local ports that are managed by the network substrate, not by
the topology.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.errors import TopologyError


@dataclass(frozen=True)
class LinkSpec:
    """One direction of a channel between two router ports.

    Attributes:
        src: Source router id.
        src_port: Port index on the source router.
        dst: Destination router id.
        dst_port: Port index on the destination router.
        latency: Link traversal latency in cycles.
    """

    src: int
    src_port: int
    dst: int
    dst_port: int
    latency: int = 1


class Topology(ABC):
    """Base class for all topologies."""

    #: Human-readable name, used in reports.
    name: str = "topology"

    def __init__(self) -> None:
        self._neighbor_cache: Dict[int, Dict[int, Tuple[int, int, int]]] = {}
        self._distance_cache: List[List[int]] = []

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def num_routers(self) -> int:
        """Number of routers."""

    @property
    @abstractmethod
    def num_nodes(self) -> int:
        """Number of terminal nodes."""

    @abstractmethod
    def links(self) -> List[LinkSpec]:
        """All directed links (both directions of every channel)."""

    @abstractmethod
    def router_of_node(self, node: int) -> int:
        """Router that terminal ``node`` attaches to."""

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def nodes_of_router(self, router: int) -> List[int]:
        """Terminal nodes attached to ``router``."""
        return [
            node
            for node in range(self.num_nodes)
            if self.router_of_node(node) == router
        ]

    def neighbors(self, router: int) -> Dict[int, Tuple[int, int, int]]:
        """Outgoing channels of a router.

        Returns:
            Mapping ``port -> (neighbor_router, neighbor_port, latency)``.
        """
        if not self._neighbor_cache:
            cache: Dict[int, Dict[int, Tuple[int, int, int]]] = {
                r: {} for r in range(self.num_routers)
            }
            for link in self.links():
                if link.src_port in cache[link.src]:
                    raise TopologyError(
                        f"router {link.src} port {link.src_port} used twice"
                    )
                cache[link.src][link.src_port] = (link.dst, link.dst_port, link.latency)
            self._neighbor_cache = cache
        return self._neighbor_cache[router]

    def radix(self, router: int) -> int:
        """Number of network channels at ``router`` (excluding local ports)."""
        return len(self.neighbors(router))

    def max_port_index(self, router: int) -> int:
        """Highest port index in use at ``router`` (ports may be sparse)."""
        ports = self.neighbors(router)
        return max(ports) if ports else -1

    def min_hops(self, src_router: int, dst_router: int) -> int:
        """Minimal hop count between two routers (BFS, cached)."""
        if not self._distance_cache:
            self._distance_cache = self._all_pairs_hops()
        return self._distance_cache[src_router][dst_router]

    def _all_pairs_hops(self) -> List[List[int]]:
        graph = self.to_networkx()
        num = self.num_routers
        table = [[-1] * num for _ in range(num)]
        for src, lengths in nx.all_pairs_shortest_path_length(graph):
            row = table[src]
            for dst, hops in lengths.items():
                row[dst] = hops
        for src in range(num):
            if min(table[src]) < 0:
                raise TopologyError(f"router {src} cannot reach every router")
        return table

    def to_networkx(self) -> nx.DiGraph:
        """Directed router graph (one edge per link direction)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.num_routers))
        for link in self.links():
            graph.add_edge(link.src, link.dst, src_port=link.src_port,
                           dst_port=link.dst_port, latency=link.latency)
        return graph

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`.

        Verifies that every link has a reverse using the same port pair,
        ports are not double-booked, and the router graph is strongly
        connected.
        """
        seen = {}
        for link in self.links():
            key = (link.src, link.src_port)
            if key in seen:
                raise TopologyError(f"duplicate outbound port {key}")
            seen[key] = link
        for link in self.links():
            reverse = seen.get((link.dst, link.dst_port))
            if (
                reverse is None
                or reverse.dst != link.src
                or reverse.dst_port != link.src_port
                or reverse.latency != link.latency
            ):
                raise TopologyError(
                    f"link {link} has no symmetric reverse channel"
                )
        if not nx.is_strongly_connected(self.to_networkx()):
            raise TopologyError("router graph is not strongly connected")
        for node in range(self.num_nodes):
            router = self.router_of_node(node)
            if not 0 <= router < self.num_routers:
                raise TopologyError(f"node {node} attached to bad router {router}")
