"""Unit tests for the declarative ExperimentSpec API."""

import json
import pickle

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.harness.runner import ExperimentSpec, run_design, spec_grid
from repro.traffic.generator import PacketMix, SyntheticTraffic

SHORT = SimulationConfig(warmup_cycles=100, measure_cycles=400,
                         drain_cycles=300, deadlock_abort_cycles=500)


def small_spec(**overrides):
    kwargs = dict(design="spin_mesh", pattern="uniform", injection_rate=0.05,
                  mesh_side=4, tdd=32, sim=SHORT)
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestConstruction:
    def test_alias_stored_canonically(self):
        assert small_spec().design == "mesh:minadaptive-spin-1vc"

    def test_unknown_design_fails_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown design"):
            small_spec(design="mesh:bogus")

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="injection_rate"):
            small_spec(injection_rate=-0.1)

    def test_bad_mesh_side_rejected(self):
        with pytest.raises(ConfigurationError, match="mesh_side"):
            small_spec(mesh_side=1)

    def test_bad_dragonfly_rejected(self):
        with pytest.raises(ConfigurationError, match="dragonfly"):
            small_spec(dragonfly=(2, 4))
        with pytest.raises(ConfigurationError, match="dragonfly"):
            small_spec(dragonfly=(2, 0, 2))

    def test_bad_tdd_rejected(self):
        with pytest.raises(ConfigurationError, match="tdd"):
            small_spec(tdd=0)

    def test_fault_spec_validated_and_canonicalized(self):
        spec = small_spec(faults="sm_drop:p=0.5,link_down@100:r1-r2")
        # Canonical form is stable: re-normalizing is a fixed point.
        again = small_spec(faults=spec.faults)
        assert again.faults == spec.faults

    def test_bad_fault_spec_fails_at_construction(self):
        from repro.errors import FaultInjectionError

        with pytest.raises(FaultInjectionError):
            small_spec(faults="replicator_malfunction")

    def test_empty_faults_normalize_to_none(self):
        assert small_spec(faults="").faults is None


class TestBuildAndRun:
    def test_build_returns_trio(self):
        network, traffic, injector = small_spec().build()
        assert network.spin is not None
        assert isinstance(traffic, SyntheticTraffic)
        assert traffic.injection_rate == 0.05
        assert traffic.stop_at == SHORT.warmup_cycles + SHORT.measure_cycles
        assert injector is None  # fault-free -> no component at all

    def test_build_with_faults_returns_injector(self):
        spec = small_spec(faults="link_down@200:r1-r2", fault_seed=7)
        _, _, injector = spec.build()
        assert isinstance(injector, FaultInjector)

    def test_run_produces_point(self):
        network, point = small_spec().run()
        assert point.injection_rate == 0.05
        assert point.delivered > 0
        assert not point.wedged
        assert point.cycles == SHORT.total_cycles

    def test_run_matches_run_design_wrapper(self):
        _, via_spec = small_spec().run()
        _, via_wrapper = run_design("spin_mesh", "uniform", 0.05,
                                    SHORT, mesh_side=4, tdd=32)
        assert via_spec == via_wrapper

    def test_tdd_override_reaches_network(self):
        network, _, _ = small_spec(tdd=17).build()
        assert network.spin.params.tdd == 17


class TestDerivation:
    def test_with_rate_and_seed(self):
        spec = small_spec()
        assert spec.with_rate(0.2).injection_rate == 0.2
        assert spec.with_seed(9).seed == 9
        # everything else untouched
        assert spec.with_rate(0.2).design == spec.design

    def test_curve_ascending(self):
        rates = [0.02, 0.05, 0.08]
        curve = small_spec().curve(rates)
        assert [s.injection_rate for s in curve] == rates

    def test_forked_seed_is_stable_and_distinct(self):
        spec = small_spec()
        replicate = spec.forked("rep0")
        assert replicate.seed != spec.seed
        assert replicate.seed == spec.forked("rep0").seed
        assert replicate.seed != spec.forked("rep1").seed


class TestSerialization:
    def test_pickle_round_trip(self):
        spec = small_spec(faults="sm_drop:p=0.25", fault_seed=3,
                          mix=PacketMix.single(1))
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_dict_round_trip_through_json(self):
        spec = small_spec(faults="sm_drop:p=0.25",
                          mix=PacketMix(lengths=(1, 5), weights=(0.3, 0.7)))
        text = json.dumps(spec.to_dict())
        assert ExperimentSpec.from_dict(json.loads(text)) == spec

    def test_from_dict_rejects_unknown_fields(self):
        data = small_spec().to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ConfigurationError, match="unknown ExperimentSpec"):
            ExperimentSpec.from_dict(data)

    def test_sim_config_round_trip(self):
        sim = SimulationConfig(warmup_cycles=7, measure_cycles=11,
                               drain_cycles=13, seed=3,
                               deadlock_abort_cycles=17,
                               wedge_poll_interval=19)
        assert SimulationConfig.from_dict(sim.to_dict()) == sim

    def test_sim_config_from_dict_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="SimulationConfig"):
            SimulationConfig.from_dict({"warmup_cycles": 1, "bogus": 2})


class TestSpecGrid:
    def test_rates_innermost_and_order_deterministic(self):
        grid = spec_grid(["spin_mesh"], ["uniform", "transpose"],
                         [0.02, 0.05], seeds=(1, 2), mesh_side=4, sim=SHORT)
        assert len(grid) == 8
        # rates innermost: each contiguous pair is one curve
        assert [s.injection_rate for s in grid[:2]] == [0.02, 0.05]
        assert grid[0].pattern == grid[1].pattern == "uniform"
        assert grid[0].seed == grid[1].seed == 1
        assert grid[2].seed == 2
        assert grid[4].pattern == "transpose"

    def test_common_kwargs_passed_through(self):
        grid = spec_grid(["spin_mesh"], ["uniform"], [0.05], mesh_side=4,
                         tdd=24, sim=SHORT)
        assert grid[0].tdd == 24
