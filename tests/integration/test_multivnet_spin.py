"""SPIN with multiple virtual networks (message classes).

Routing deadlocks form within one message class, so the recovery machinery
must be scoped per vnet: a probe tracing a vnet-0 chain must neither be
dropped because a vnet-1 buffer happens to be idle at some port, nor freeze
vnet-1 packets.  (The paper's full-system runs use 3 vnets for protocol
deadlock avoidance; these tests pin the interaction down.)
"""

from repro.config import NetworkConfig, SpinParams
from repro.deadlock.waitgraph import has_deadlock
from repro.network.network import Network
from repro.network.packet import Packet
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.sim.engine import Simulator
from repro.topology.ring import COUNTER_CLOCKWISE, RingTopology


def two_vnet_ring(m=6, tdd=8, seed=1):
    return Network(RingTopology(m), NetworkConfig(vcs_per_vnet=1,
                                                  num_vnets=2),
                   MinimalAdaptiveRouting(seed), spin=SpinParams(tdd=tdd),
                   seed=seed)


def plant_ring_deadlock_in_vnet(network, vnet, dst_ahead=2):
    topology: RingTopology = network.topology
    m = topology.num_routers
    packets = []
    for router_id in range(m):
        dst = (router_id + dst_ahead) % m
        packet = Packet(src_node=(router_id - 1) % m, dst_node=dst,
                        src_router=(router_id - 1) % m, dst_router=dst,
                        length=1, vnet=vnet)
        packet.inject_cycle = 0
        vc = network.routers[router_id].vnet_slice(COUNTER_CLOCKWISE, vnet)[0]
        vc.reserve(packet, now=0, link_latency=0, router_latency=0)
        vc.head_arrival = vc.ready_at = vc.tail_arrival = 0
        network.note_vc_reserved(network.routers[router_id])
        network.stats.record_creation(packet, 0)
        packets.append(packet)
    return packets


class TestVnetScopedRecovery:
    def test_deadlock_in_one_vnet_with_other_vnet_idle(self):
        # The vnet-1 VCs at every port are idle; under port-wide probe
        # rules the probe would be dropped everywhere and the deadlock
        # would never be confirmed.
        network = two_vnet_ring()
        packets = plant_ring_deadlock_in_vnet(network, vnet=0)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        assert has_deadlock(network, sim.cycle)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=2000)
        assert done, dict(network.stats.events)
        assert network.stats.events.get("spins", 0) >= 1

    def test_deadlock_in_upper_vnet(self):
        network = two_vnet_ring()
        packets = plant_ring_deadlock_in_vnet(network, vnet=1)
        sim = Simulator()
        sim.register(network)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(packets),
            max_cycles=2000)
        assert done, dict(network.stats.events)

    def test_spin_never_touches_other_vnet_packets(self):
        network = two_vnet_ring()
        deadlocked = plant_ring_deadlock_in_vnet(network, vnet=0)
        # A quiet bystander packet in vnet 1, already at its destination
        # neighborhood, blocked only by ejection scheduling.
        bystander = Packet(src_node=0, dst_node=3, src_router=0,
                           dst_router=3, length=1, vnet=1)
        bystander.inject_cycle = 0
        vc = network.routers[2].vnet_slice(COUNTER_CLOCKWISE, 1)[0]
        vc.reserve(bystander, now=0, link_latency=0, router_latency=0)
        vc.head_arrival = vc.ready_at = vc.tail_arrival = 0
        network.note_vc_reserved(network.routers[2])
        network.stats.record_creation(bystander, 0)
        sim = Simulator()
        sim.register(network)
        sim.run_until(
            lambda: network.stats.packets_delivered == len(deadlocked) + 1,
            max_cycles=2000)
        assert bystander.spins == 0  # moved normally, never spun
        assert all(p.spins >= 1 for p in deadlocked)

    def test_simultaneous_deadlocks_in_both_vnets(self):
        network = two_vnet_ring(tdd=8)
        a = plant_ring_deadlock_in_vnet(network, vnet=0)
        b = plant_ring_deadlock_in_vnet(network, vnet=1, dst_ahead=3)
        sim = Simulator()
        sim.register(network)
        done = sim.run_until(
            lambda: network.stats.packets_delivered == len(a) + len(b),
            max_cycles=6000)
        assert done, dict(network.stats.events)
        assert not has_deadlock(network, sim.cycle)
