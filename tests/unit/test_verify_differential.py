"""Unit tests for repro.verify.differential — fast paths and report logic.

The full (slow) triad agreement runs live in
tests/integration/test_differential_conformance.py; here we exercise the
comparison machinery with short simulations and hand-built results.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.config import SimulationConfig
from repro.harness.runner import ExperimentSpec
from repro.verify.differential import (
    DEFAULT_TRIAD,
    DifferentialReport,
    SchemeResult,
    _multiset_diff,
    conformance_sim,
    run_conformance,
    run_scheme,
)

SHORT_SIM = SimulationConfig(warmup_cycles=50, measure_cycles=150,
                             drain_cycles=900, deadlock_abort_cycles=800)


def _result(design: str, delivered: Counter, wedged: bool = False,
            violations: int = 0) -> SchemeResult:
    # A real run per hand-built result would be costly; use a lightweight
    # stub with just the attributes the report machinery reads.

    class _Point:
        def __init__(self, wedged):
            self.wedged = wedged

        def to_dict(self):
            return {"wedged": self.wedged}

    return SchemeResult(design=design, point=_Point(wedged),
                        delivered=delivered, violations=violations,
                        violation_families={"teleport": violations}
                        if violations else {})


# ----------------------------------------------------------------------
# Pure comparison logic
# ----------------------------------------------------------------------
def test_multiset_diff_describes_both_directions():
    reference = Counter({("a",): 2, ("b",): 1})
    other = Counter({("a",): 1, ("c",): 1})
    text = _multiset_diff(reference, other)
    assert "2 missing" in text
    assert "1 extra" in text
    assert _multiset_diff(reference, Counter(reference)) == ""


def test_report_agreement_and_summary():
    delivered = Counter({(0, 5, 1, 0, 12): 1})
    report = DifferentialReport(
        spec={"seed": 1},
        results=[_result("a", delivered), _result("b", Counter(delivered))])
    assert report.agreed
    assert "AGREED" in report.summary()
    payload = report.to_dict()
    assert payload["agreed"] is True
    assert payload["disagreements"] == []
    assert [r["design"] for r in payload["results"]] == ["a", "b"]


def test_report_disagreement_rendering():
    report = DifferentialReport(
        spec={"seed": 1},
        results=[_result("a", Counter())],
        disagreements=["delivered multiset differs: a vs b: 1 missing"])
    assert not report.agreed
    summary = report.summary()
    assert "DISAGREED" in summary
    assert "!! delivered multiset differs" in summary
    assert report.to_dict()["agreed"] is False


def test_scheme_result_to_dict():
    result = _result("a", Counter({(0, 1, 1, 0, 3): 2}), wedged=True,
                     violations=4)
    payload = result.to_dict()
    assert payload["design"] == "a"
    assert payload["delivered"] == 2
    assert payload["wedged"] is True
    assert payload["violations"] == 4
    assert payload["violation_families"] == {"teleport": 4}


# ----------------------------------------------------------------------
# run_scheme / run_conformance wiring
# ----------------------------------------------------------------------
def test_run_scheme_journals_deliveries():
    spec = ExperimentSpec(design="mesh:minadaptive-spin-2vc",
                          pattern="uniform", injection_rate=0.05, seed=2,
                          sim=SHORT_SIM)
    result = run_scheme(spec)
    assert result.violations == 0
    assert result.violation_families == {}
    total = sum(result.delivered.values())
    # The journal spans the whole run (warmup + measure + drain) while the
    # point's `delivered` only counts the measure window.
    assert total >= result.point.delivered
    assert result.point.delivered > 0
    for signature in result.delivered:
        src, dst, length, vnet, created = signature
        assert src != dst
        assert length >= 1
        assert vnet >= 0
        assert created >= 0


def test_run_conformance_rejects_fewer_than_two_designs():
    with pytest.raises(ValueError):
        run_conformance(designs=("mesh:minadaptive-spin-2vc",))


def test_run_conformance_pair_agrees_quickly():
    report = run_conformance(
        injection_rate=0.05, seed=3,
        designs=("mesh:minadaptive-spin-2vc", "mesh:escapevc-2vc"),
        sim=SHORT_SIM)
    assert report.agreed, report.summary()
    assert [r.design for r in report.results] == [
        "mesh:minadaptive-spin-2vc", "mesh:escapevc-2vc"]
    assert report.results[0].delivered == report.results[1].delivered
    assert report.spec["designs"] == [
        "mesh:minadaptive-spin-2vc", "mesh:escapevc-2vc"]


def test_run_conformance_flags_artificial_disagreement(monkeypatch):
    """Force divergent multisets through a patched run_scheme."""
    import repro.verify.differential as differential

    calls = []

    def fake_run_scheme(spec, mode="record"):
        calls.append(spec.design)
        delivered = Counter({(0, 5, 1, 0, 12): 1})
        if len(calls) > 1:
            delivered[(0, 5, 1, 0, 12)] += 1  # one extra delivery
        return _result(spec.design, delivered)

    monkeypatch.setattr(differential, "run_scheme", fake_run_scheme)
    report = differential.run_conformance(
        designs=("mesh:minadaptive-spin-2vc", "mesh:escapevc-2vc"),
        sim=SHORT_SIM)
    assert not report.agreed
    assert any("delivered multiset differs" in d
               for d in report.disagreements)


def test_defaults_are_sane():
    assert len(DEFAULT_TRIAD) == 3
    sim = conformance_sim()
    assert sim.drain_cycles >= 2 * sim.measure_cycles
