"""Experiment harness: named configurations, runners and report tables."""

from repro.harness.configs import (
    DesignConfig,
    MESH_DESIGNS,
    DRAGONFLY_DESIGNS,
    get_design,
    resolve_design_name,
    build_network,
)
from repro.harness.campaign import (
    CampaignConfig,
    CampaignEngine,
    CampaignJournal,
    CampaignReport,
    load_manifest,
    write_manifest,
)
from repro.harness.parallel import ParallelRunner, SpecResult
from repro.harness.runner import (
    ExperimentSpec,
    latency_curve,
    run_design,
    spec_grid,
)
from repro.harness.supervision import (
    RetryPolicy,
    SupervisedPool,
    classify_failure,
)
from repro.harness.tables import format_table
from repro.harness.theories import TABLE_I, TheoryRow

__all__ = [
    "CampaignConfig",
    "CampaignEngine",
    "CampaignJournal",
    "CampaignReport",
    "RetryPolicy",
    "SupervisedPool",
    "classify_failure",
    "load_manifest",
    "write_manifest",
    "DesignConfig",
    "MESH_DESIGNS",
    "DRAGONFLY_DESIGNS",
    "get_design",
    "resolve_design_name",
    "build_network",
    "ExperimentSpec",
    "ParallelRunner",
    "SpecResult",
    "spec_grid",
    "latency_curve",
    "run_design",
    "format_table",
    "TABLE_I",
    "TheoryRow",
]
