"""Fig. 10 + Sec. VI area/power claims — router cost comparison.

Regenerates (a) the Fig. 10 area-overhead bars (designs normalized to the
west-first avoidance router) and (b) the Sec. VI-C/D headline savings of
the 1-VC SPIN-enabled routers versus multi-VC baselines, from the
calibrated analytical model (DESIGN.md substitution note 3).
"""

import pytest

from repro.harness.tables import format_table
from repro.power.model import AreaModel, EnergyModel, RouterSpec
from repro.power.modules import SPIN_MODULES, loop_buffer_flits

from benchmarks._common import run_once, write_result

MESH_SPEC_3VC = RouterSpec(radix=5, vcs=3)
DFLY_RADIX = 16


def run_experiment():
    area = AreaModel()
    energy = EnergyModel()

    fig10_rows = []
    base = area.design_area("westfirst", MESH_SPEC_3VC)
    for design, label in [("westfirst", "West-first (Dally avoidance)"),
                          ("spin", "SPIN (this paper)"),
                          ("static_bubble", "Static Bubble (recovery)"),
                          ("escape_vc", "Escape-VC (Duato avoidance)")]:
        total = area.design_area(design, MESH_SPEC_3VC, num_routers=64)
        fig10_rows.append([label, round(total / base, 3),
                           f"{100 * (total / base - 1):+.1f}%"])
    fig10 = format_table(
        ["Design", "Area (norm.)", "Overhead"],
        fig10_rows,
        title="Fig. 10: router area normalized to west-first (8x8 mesh, 3 VC)")

    savings_rows = []
    for name, radix, a, b in [
        ("mesh 1VC vs 3VC", 5, 1, 3),
        ("mesh 1VC vs 2VC", 5, 1, 2),
        ("dragonfly 1VC vs 3VC", DFLY_RADIX, 1, 3),
    ]:
        area_cut = 1 - (area.router_area(RouterSpec(radix, a))
                        / area.router_area(RouterSpec(radix, b)))
        power_cut = 1 - (energy.router_power(RouterSpec(radix, a))
                         / energy.router_power(RouterSpec(radix, b)))
        savings_rows.append([name, f"{100 * area_cut:.1f}%",
                             f"{100 * power_cut:.1f}%"])
    savings = format_table(
        ["Comparison", "Area saving", "Power saving"],
        savings_rows,
        title="Sec. VI-C/D: 1-VC router savings enabled by SPIN")

    modules = format_table(
        ["Module", "Role"],
        [[m.name, m.description] for m in SPIN_MODULES],
        title="Table II: SPIN router modules "
              f"(loop buffer = {loop_buffer_flits(5, 64):.1f} flits for an "
              "8x8 mesh with 128-bit links)")

    return "\n\n".join([fig10, savings, modules]), fig10_rows, savings_rows


def test_fig10(benchmark):
    text, fig10_rows, savings_rows = run_once(benchmark, run_experiment)
    write_result("fig10_area", text)
    overheads = {row[0].split(" ")[0]: row[1] for row in fig10_rows}
    assert overheads["West-first"] == 1.0
    assert overheads["SPIN"] == pytest.approx(1.04, abs=0.01)
    assert overheads["Static"] == pytest.approx(1.10, abs=0.01)
    assert overheads["Escape-VC"] == pytest.approx(2.00, abs=0.05)
    # Ordering of Fig. 10: west-first < SPIN < static bubble << escape-VC.
    values = [row[1] for row in fig10_rows]
    assert values == sorted(values)
    # Headline savings within 2 points of the paper's numbers.
    expected = {"mesh 1VC vs 3VC": (52, 50),
                "mesh 1VC vs 2VC": (36, 34),
                "dragonfly 1VC vs 3VC": (53, 55)}
    for name, area_str, power_str in savings_rows:
        area_pct = float(area_str.rstrip("%"))
        power_pct = float(power_str.rstrip("%"))
        want_area, want_power = expected[name]
        assert abs(area_pct - want_area) <= 2, name
        assert abs(power_pct - want_power) <= 2, name
