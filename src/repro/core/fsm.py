"""SPIN counter-FSM states (paper Fig. 4a).

Every router carries one counter with a seven-state FSM.  The upper half of
the paper's figure (MOVE, FORWARD_PROGRESS, PROBE_MOVE, KILL_MOVE) applies
to the recovery-*initiating* router; the lower half (DD, FROZEN) to the
other routers of a deadlocked chain; OFF is shared.
"""

from __future__ import annotations

from enum import Enum


class SpinState(Enum):
    """States of the per-router SPIN counter FSM."""

    #: No occupied VCs to watch.
    OFF = "off"
    #: Deadlock detection: counting down ``tDD`` on a pointed VC.
    DD = "dd"
    #: (initiator) Probe returned; move sent; awaiting its return.
    MOVE = "move"
    #: (non-initiator) A VC is frozen; counting to the spin cycle.
    FROZEN = "frozen"
    #: (initiator) Move returned; counting to the spin cycle.
    FORWARD_PROGRESS = "forward_progress"
    #: (initiator) Spin done; probe_move sent (or scheduled); awaiting return.
    PROBE_MOVE = "probe_move"
    #: (initiator) Recovery failed mid-way; kill_move sent; awaiting return.
    KILL_MOVE = "kill_move"


#: States in which this router is the active recovery initiator.
INITIATOR_STATES = frozenset({
    SpinState.MOVE,
    SpinState.FORWARD_PROGRESS,
    SpinState.PROBE_MOVE,
    SpinState.KILL_MOVE,
})
