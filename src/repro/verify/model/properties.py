"""Safety and bounded-liveness properties of the abstract control plane.

Safety properties are checked on every explored transition; each carries
the name of the PR 3 invariant family its concrete counterpart trips
(:data:`PROPERTY_TO_INVARIANT`), which is what lets a model counterexample
round-trip into a failing golden scenario.

* ``fsm_legality``      — every per-router FSM delta respects
  :data:`repro.verify.invariants.ATOMIC_ILLEGAL_TRANSITIONS` (derived
  from the FSM's own transition table, imported — not re-derived — so
  model and catalog can never drift apart).  Model steps are atomic
  (one handler each), so the checker enforces the strict per-handler
  relation; the runtime oracle's looser per-cycle catalog
  (``ILLEGAL_TRANSITIONS``) is in turn audited against what the checker
  observes (tests/unit/test_fsm_legality.py);
* ``single_spin_token`` — at most one initiator holds a committed spin
  (FORWARD_PROGRESS), a committed spin owns every frozen VC of the loop,
  and a freeze token is never overwritten by a rival (it may only be
  cleared by kill / spin / abort / escape);
* ``lost_deadlock``     — the deadlock may only be declared resolved by an
  actual synchronized spin; no bookkeeping path loses it.

Bounded liveness is a whole-graph analysis (:func:`analyze_liveness`), run
after exhaustive exploration:

* the reachable graph must be **acyclic** (every action consumes a budget
  or makes monotone protocol progress — a cycle would be an adversarial
  livelock the budgets failed to break);
* every terminal state must be *resolved* (a spin happened) or — outside
  the pinned single-initiator lossless mode — *clean* (nothing frozen,
  nothing latched, no SM in flight: initiator races and adversarial
  losses may mutually cancel a round, degrading the protocol to plain
  detection, which the next ``tDD`` round re-enters beyond the model
  horizon);
* the longest path to the first committed recovery and to resolution,
  weighted with the design's concrete per-action cycle costs, must sit
  within the theory's recovery-latency bound
  (:func:`repro.deadlock.waitgraph.spin_persistence_bound` — the same
  bound the runtime oracle enforces on live simulations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.fsm import SpinState
from repro.verify.invariants import ATOMIC_ILLEGAL_TRANSITIONS
from repro.verify.model.state import NOBODY, GlobalState

#: Model property -> concrete invariant family (repro.verify.invariants).
PROPERTY_TO_INVARIANT: Dict[str, str] = {
    "fsm_legality": "fsm_transition",
    "single_spin_token": "freeze_token_uniqueness",
    "lost_deadlock": "deadlock_persistence",
}


@dataclass(frozen=True)
class PropertyViolation:
    """One safety property broken by one transition."""

    prop: str
    detail: str
    router: Optional[int] = None

    @property
    def invariant(self) -> str:
        """The concrete invariant family this maps onto."""
        return PROPERTY_TO_INVARIANT[self.prop]


def check_transition(prev: GlobalState, action: str, state: GlobalState
                     ) -> List[PropertyViolation]:
    """All safety violations introduced by ``prev --action--> state``."""
    found: List[PropertyViolation] = []
    found.extend(_check_fsm_legality(prev, state))
    found.extend(_check_spin_token(prev, state))
    found.extend(_check_lost_deadlock(prev, action, state))
    return found


def _check_fsm_legality(prev: GlobalState, state: GlobalState):
    for i, (before, after) in enumerate(zip(prev.routers, state.routers)):
        if after.fsm is before.fsm:
            continue
        if after.fsm in ATOMIC_ILLEGAL_TRANSITIONS.get(before.fsm, ()):
            yield PropertyViolation(
                "fsm_legality",
                f"router {i}: {before.fsm.name} -> {after.fsm.name}",
                router=i)


def _check_spin_token(prev: GlobalState, state: GlobalState):
    committed = [i for i, r in enumerate(state.routers)
                 if r.fsm is SpinState.FORWARD_PROGRESS]
    if len(committed) > 1:
        yield PropertyViolation(
            "single_spin_token",
            f"{len(committed)} simultaneous committed spins at "
            f"{committed}")
    # A freeze token may be cleared, never usurped by another initiator.
    for i, (before, after) in enumerate(zip(prev.routers, state.routers)):
        if (before.frozen_by != NOBODY and after.frozen_by != NOBODY
                and after.frozen_by != before.frozen_by):
            yield PropertyViolation(
                "single_spin_token",
                f"router {i}: freeze token {before.frozen_by} overwritten "
                f"by {after.frozen_by}", router=i)
    # A committed spin owns its whole loop: FORWARD_PROGRESS implies every
    # frozen VC carries the initiator's token.
    for i in committed:
        foreign = [j for j, r in enumerate(state.routers)
                   if r.frozen_by not in (NOBODY, i)]
        if foreign:
            yield PropertyViolation(
                "single_spin_token",
                f"initiator {i} committed while routers {foreign} are "
                f"frozen by a rival token", router=i)


def _check_lost_deadlock(prev: GlobalState, action: str,
                         state: GlobalState):
    if state.resolved and not prev.resolved \
            and not action.startswith("spin@"):
        yield PropertyViolation(
            "lost_deadlock",
            f"deadlock declared resolved by {action!r}, not by a spin")


# ----------------------------------------------------------------------
# Bounded liveness
# ----------------------------------------------------------------------
@dataclass
class ActionWeights:
    """Concrete worst-case cycle cost of each abstract action kind.

    Derived from one design's :class:`~repro.config.SpinParams` and link
    latencies; see :meth:`from_design`.  ``detect`` charges a full ``tDD``
    (each router's successive probes are at least a detection period
    apart), ``deliver`` one SM hop, ``watchdog`` the SM round-trip bound
    its timeout is derived from, ``spin`` the synchronized-countdown
    window ``2 * loop_delay + sync_slack``.
    """

    detect: int
    deliver: int
    watchdog: int
    spin: int
    drop: int = 0

    def of(self, action: str) -> int:
        kind = action.split("@")[0].split(" ")[0]
        if kind == "detect":
            return self.detect
        if kind == "deliver":
            return self.deliver
        if kind in ("watchdog", "escape"):
            return self.watchdog
        if kind in ("spin", "abort"):
            return self.spin
        return self.drop


@dataclass
class LivenessReport:
    """Graph-level liveness verdicts and concrete bound cross-checks."""

    acyclic: bool
    terminal_states: int
    resolved_terminals: int
    degraded_terminals: int
    stuck_terminals: List[GlobalState] = field(default_factory=list)
    #: Longest path (steps / weighted cycles) to the first committed
    #: recovery (a FORWARD_PROGRESS entry) over paths that reach one.
    detection_steps: int = 0
    detection_cycles: int = 0
    #: Longest path (steps / weighted cycles) from formation to a
    #: resolving spin.
    recovery_steps: int = 0
    recovery_cycles: int = 0
    persistence_bound: Optional[int] = None

    @property
    def live(self) -> bool:
        return self.acyclic and not self.stuck_terminals

    @property
    def bounds_proved(self) -> Optional[bool]:
        if self.persistence_bound is None or not self.live:
            return None
        return self.recovery_cycles <= self.persistence_bound


def analyze_liveness(edges: List[Tuple[int, int, str]],
                     states: List[GlobalState],
                     weights: Optional[ActionWeights] = None,
                     persistence_bound: Optional[int] = None,
                     require_resolution: bool = True) -> LivenessReport:
    """Analyze the explored graph (states by index, ``edges`` directed).

    ``require_resolution``: when True (no adversarial drop budget), every
    terminal must be resolved; with drops allowed, a *clean* degraded
    terminal is accepted — see the module docstring.
    """
    n = len(states)
    out: List[List[Tuple[int, str]]] = [[] for _ in range(n)]
    indegree = [0] * n
    for src, dst, label in edges:
        out[src].append((dst, label))
        indegree[dst] += 1

    # Kahn topological order; leftovers mean a reachable cycle.
    order: List[int] = [i for i in range(n) if indegree[i] == 0]
    head = 0
    remaining = list(indegree)
    while head < len(order):
        node = order[head]
        head += 1
        for dst, _ in out[node]:
            remaining[dst] -= 1
            if remaining[dst] == 0:
                order.append(dst)
    acyclic = len(order) == n

    terminals = [i for i in range(n) if not out[i]]
    resolved = [i for i in terminals if states[i].resolved]
    stuck: List[GlobalState] = []
    degraded = 0
    for i in terminals:
        if states[i].resolved:
            continue
        if not require_resolution and _is_clean_degradation(states[i]):
            degraded += 1
        else:
            stuck.append(states[i])

    report = LivenessReport(
        acyclic=acyclic, terminal_states=len(terminals),
        resolved_terminals=len(resolved), degraded_terminals=degraded,
        stuck_terminals=stuck, persistence_bound=persistence_bound)
    if not acyclic:
        return report

    # Longest-path DP over the topological order, in unit steps and in
    # concrete worst-case cycles.
    steps = [0] * n
    cycles = [0] * n
    for node in order:
        for dst, label in out[node]:
            weight = weights.of(label) if weights is not None else 0
            if steps[node] + 1 > steps[dst]:
                steps[dst] = steps[node] + 1
            if cycles[node] + weight > cycles[dst]:
                cycles[dst] = cycles[node] + weight
    # Milestones are *entries*: the first state of a path that commits a
    # spin / is resolved — post-milestone drain steps must not inflate the
    # bound.
    def has_commit(i: int) -> bool:
        return any(r.fsm is SpinState.FORWARD_PROGRESS
                   for r in states[i].routers)

    first_commits = {dst for src, dst, _ in edges
                     if has_commit(dst) and not has_commit(src)}
    first_resolved = {dst for src, dst, _ in edges
                      if states[dst].resolved and not states[src].resolved}
    if first_commits:
        report.detection_steps = max(steps[i] for i in first_commits)
        report.detection_cycles = max(cycles[i] for i in first_commits)
    if first_resolved:
        report.recovery_steps = max(steps[i] for i in first_resolved)
        report.recovery_cycles = max(cycles[i] for i in first_resolved)
    return report


def _is_clean_degradation(state: GlobalState) -> bool:
    """Unresolved but safe: nothing frozen/latched/in flight — the next
    detection round (beyond the model horizon) starts from scratch."""
    if state.messages:
        return False
    return all(
        r.frozen_by == NOBODY and r.latched == NOBODY
        and r.fsm in (SpinState.OFF, SpinState.DD)
        for r in state.routers)
