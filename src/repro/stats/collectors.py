"""Run-time statistics.

A single :class:`NetworkStats` instance per network accumulates packet
events, SPIN control-plane events, and link utilization.  Packets created
inside the measurement window are *measured*; latency and throughput are
computed over measured packets only, the standard warmup/measure/drain
methodology.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from math import ceil
from typing import List, Optional


@dataclass
class LatencySummary:
    """Aggregate latency statistics of measured, delivered packets."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: int

    @staticmethod
    def from_samples(samples: List[int]) -> "LatencySummary":
        if not samples:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0)
        ordered = sorted(samples)
        count = len(ordered)

        def pct(fraction: float) -> float:
            # Nearest-rank percentile: the smallest ordered value with at
            # least ``fraction`` of the samples at or below it, i.e.
            # ordered[ceil(fraction * count) - 1].  (The previous
            # ``int(fraction * count)`` truncation indexed one element too
            # high whenever fraction * count was integral — at count=100,
            # p50 read ordered[50] instead of ordered[49].)
            rank = ceil(fraction * count)
            return float(ordered[max(rank, 1) - 1])

        return LatencySummary(
            count=count,
            mean=sum(ordered) / count,
            p50=pct(0.50),
            p95=pct(0.95),
            p99=pct(0.99),
            maximum=ordered[-1],
        )


class NetworkStats:
    """Event counters and latency samples for one simulation."""

    def __init__(self) -> None:
        self.measure_start: Optional[int] = None
        self.measure_end: Optional[int] = None
        self.packets_created = 0
        self.packets_injected = 0
        self.packets_delivered = 0
        self.packets_lost = 0
        self.measured_created = 0
        self.measured_delivered = 0
        self.measured_lost = 0
        self.measured_flits_created = 0
        self.measured_flits_delivered = 0
        self.latencies: List[int] = []
        self.network_latencies: List[int] = []
        self.hop_counts: List[int] = []
        #: Free-form event counters (SPIN probes, spins, recoveries, ...).
        self.events: Counter = Counter()

    # ------------------------------------------------------------------
    # Window control
    # ------------------------------------------------------------------
    def open_window(self, start: int, end: int) -> None:
        """Declare the measurement window [start, end) in cycles."""
        self.measure_start = start
        self.measure_end = end

    def in_window(self, cycle: int) -> bool:
        """Whether a cycle falls in the measurement window."""
        return (
            self.measure_start is not None
            and self.measure_start <= cycle
            and (self.measure_end is None or cycle < self.measure_end)
        )

    # ------------------------------------------------------------------
    # Packet events
    # ------------------------------------------------------------------
    def record_creation(self, packet, now: int) -> None:
        self.packets_created += 1
        if self.in_window(now):
            packet.measured = True
        if packet.measured:
            self.measured_created += 1
            self.measured_flits_created += packet.length

    def record_injection(self, packet, now: int) -> None:
        self.packets_injected += 1

    def record_delivery(self, packet, now: int) -> None:
        self.packets_delivered += 1
        if packet.measured:
            self.measured_delivered += 1
            self.measured_flits_delivered += packet.length
            self.latencies.append(packet.latency())
            self.network_latencies.append(packet.network_latency())
            self.hop_counts.append(packet.hops)

    def record_loss(self, packet, now: int) -> None:
        """A packet was destroyed in flight (fault injection, reclamation).

        Lost measured packets still count toward ``measured_created``, so
        :meth:`delivery_ratio` degrades honestly under faults instead of
        silently ignoring the casualties.
        """
        self.packets_lost += 1
        self.events["packets_lost"] += 1
        if packet.measured:
            self.measured_lost += 1

    def count(self, event: str, amount: int = 1) -> None:
        """Increment a named event counter."""
        self.events[event] += amount

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def latency(self) -> LatencySummary:
        """End-to-end latency (including source queueing) summary."""
        return LatencySummary.from_samples(self.latencies)

    def network_latency(self) -> LatencySummary:
        """Router-to-router latency summary."""
        return LatencySummary.from_samples(self.network_latencies)

    def throughput(self, measure_cycles: int, num_nodes: int) -> float:
        """Received throughput in flits/node/cycle over the window."""
        if measure_cycles <= 0 or num_nodes <= 0:
            return 0.0
        return self.measured_flits_delivered / (measure_cycles * num_nodes)

    def delivery_ratio(self) -> float:
        """Fraction of measured packets that were delivered."""
        if self.measured_created == 0:
            return 1.0
        return self.measured_delivered / self.measured_created

    def point_kwargs(self, measure_cycles: int, num_nodes: int) -> dict:
        """Measurement fields of a :class:`~repro.stats.sweep.SweepPoint`.

        One place computes the stats-derived half of a point (latency,
        throughput, delivery, event counters) so every driver — serial,
        parallel, spec-based — materializes measurements identically.
        """
        latency = self.latency()
        return {
            "mean_latency": latency.mean,
            "p99_latency": latency.p99,
            "throughput": self.throughput(measure_cycles, num_nodes),
            "delivery_ratio": self.delivery_ratio(),
            "delivered": self.measured_delivered,
            "events": dict(self.events),
            "packets_lost": self.packets_lost,
        }

    def mean_hops(self) -> float:
        """Average hop count of measured, delivered packets."""
        if not self.hop_counts:
            return 0.0
        return sum(self.hop_counts) / len(self.hop_counts)
