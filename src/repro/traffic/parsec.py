"""PARSEC proxy workloads (substitution for the paper's full-system runs).

The paper drives Fig. 8(a) with PARSEC benchmarks over a 3-vnet directory
coherence protocol in gem5.  Full-system simulation is out of scope here, so
each benchmark is modeled by the traffic it presents to the NoC — which is
what determines network EDP:

* a low average injection rate (network requests are filtered by L1/L2;
  the paper observes real applications inject >=10x below deadlocking
  rates),
* a read/write mix (reads: 1-flit request answered by a 5-flit data reply on
  a separate vnet; writes: 5-flit request, 1-flit ack),
* bursty on/off arrival phases (Markov-modulated Bernoulli),
* a directory-hotspot fraction (a subset of nodes serves as directories).

Per-benchmark parameters are chosen to span the published NoC
characterization of PARSEC (canneal/streamcluster network-heavy, swaptions/
blackscholes light).  Fig. 8(a) needs only *relative* EDP between two router
configurations under identical application-level load, which this proxy
exercises faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import CONTROL_PACKET_FLITS, DATA_PACKET_FLITS
from repro.errors import ConfigurationError
from repro.network.packet import Packet
from repro.sim.rng import DeterministicRng


@dataclass(frozen=True)
class ParsecProfile:
    """Network-level traffic profile of one PARSEC benchmark.

    Attributes:
        name: Benchmark name.
        rate: Mean injection rate in flits/node/cycle (long-run average).
        read_fraction: Fraction of transactions that are reads.
        burst_on: Probability an idle node enters a bursty phase each cycle.
        burst_off: Probability a bursting node goes idle each cycle.
        burst_multiplier: Rate multiplier while bursting.
        hotspot_fraction: Fraction of traffic addressed to directory nodes.
    """

    name: str
    rate: float
    read_fraction: float
    burst_on: float
    burst_off: float
    burst_multiplier: float
    hotspot_fraction: float


#: Traffic profiles spanning the PARSEC suite's published NoC behaviour.
PARSEC_PROFILES: Dict[str, ParsecProfile] = {
    profile.name: profile
    for profile in (
        ParsecProfile("blackscholes", 0.004, 0.80, 0.002, 0.05, 4.0, 0.10),
        ParsecProfile("bodytrack",    0.010, 0.70, 0.004, 0.04, 5.0, 0.15),
        ParsecProfile("canneal",      0.030, 0.60, 0.010, 0.02, 6.0, 0.25),
        ParsecProfile("dedup",        0.018, 0.65, 0.006, 0.03, 5.0, 0.20),
        ParsecProfile("ferret",       0.020, 0.65, 0.006, 0.03, 5.0, 0.20),
        ParsecProfile("fluidanimate", 0.012, 0.70, 0.004, 0.04, 4.0, 0.15),
        ParsecProfile("streamcluster", 0.035, 0.55, 0.012, 0.02, 6.0, 0.25),
        ParsecProfile("swaptions",    0.003, 0.85, 0.002, 0.06, 3.0, 0.10),
        ParsecProfile("vips",         0.015, 0.70, 0.005, 0.03, 5.0, 0.15),
        ParsecProfile("x264",         0.022, 0.60, 0.008, 0.03, 5.0, 0.20),
    )
}


class ParsecWorkload:
    """Simulator component replaying a PARSEC traffic profile.

    Requests go out on vnet 0 and solicit replies, which the destination NIC
    injects on the reply vnet — a closed request/response loop like the
    directory protocol the paper simulates (3 vnets avoid protocol
    deadlocks; see NetworkConfig.num_vnets).
    """

    def __init__(self, network, profile: ParsecProfile, seed: int = 1,
                 stop_at=None) -> None:
        if network.config.num_vnets < 2:
            raise ConfigurationError(
                "PARSEC proxy needs >= 2 vnets (requests + replies)")
        self.network = network
        self.profile = profile
        self.stop_at = stop_at
        self.rng = DeterministicRng(seed).fork(f"parsec:{profile.name}")
        num_nodes = network.topology.num_nodes
        #: Directory nodes receiving the hotspot share of requests.
        self.directories: List[int] = [
            node for node in range(num_nodes)
            if node % max(1, num_nodes // 8) == 0
        ]
        self._bursting = [False] * num_nodes
        # Requests average (1 + reply) or (5 + ack) flits per transaction;
        # scale the per-cycle transaction probability to hit `rate`.
        flits_per_txn = (
            profile.read_fraction * (CONTROL_PACKET_FLITS + DATA_PACKET_FLITS)
            + (1 - profile.read_fraction) * (DATA_PACKET_FLITS + CONTROL_PACKET_FLITS)
        )
        duty = profile.burst_on / (profile.burst_on + profile.burst_off)
        effective_multiplier = (1 - duty) + duty * profile.burst_multiplier
        self._base_probability = profile.rate / (
            flits_per_txn * effective_multiplier)

    def phase_inject(self, cycle: int) -> None:
        if self.stop_at is not None and cycle >= self.stop_at:
            return
        rng = self.rng
        profile = self.profile
        network = self.network
        for nic in network.nics:
            node = nic.node
            if self._bursting[node]:
                if rng.bernoulli(profile.burst_off):
                    self._bursting[node] = False
            elif rng.bernoulli(profile.burst_on):
                self._bursting[node] = True
            probability = self._base_probability
            if self._bursting[node]:
                probability *= profile.burst_multiplier
            if not rng.bernoulli(probability):
                continue
            dst = self._pick_destination(node, rng)
            if dst is None:
                continue
            is_read = rng.bernoulli(profile.read_fraction)
            length = CONTROL_PACKET_FLITS if is_read else DATA_PACKET_FLITS
            packet = Packet(
                src_node=node,
                dst_node=dst,
                src_router=nic.router_id,
                dst_router=network.topology.router_of_node(dst),
                length=length,
                vnet=0,
                create_cycle=cycle,
            )
            packet.reply_length = (
                DATA_PACKET_FLITS if is_read else CONTROL_PACKET_FLITS)
            network.stats.record_creation(packet, cycle)
            nic.enqueue(packet)

    def _pick_destination(self, src: int, rng: DeterministicRng):
        if rng.bernoulli(self.profile.hotspot_fraction):
            dst = rng.choice(self.directories)
        else:
            dst = rng.randint(0, self.network.topology.num_nodes - 1)
        return None if dst == src else dst
