"""The fault injector simulator component.

:class:`FaultInjector` executes a :class:`~repro.faults.events.FaultSchedule`
against a bound network.  It participates in the cycle loop through
``phase_control`` and must be registered with the simulator *before* the
network component, so that link/router state changes land before the SPIN
control plane and the datapath react in the same cycle.

Fault semantics (full discussion in ``docs/FAULTS.md``):

* **Fail-stop links** — a dead link accepts no new packets or SMs.  Flits
  already streaming when the link dies complete their traversal (the fault
  is modeled at the link *entry*), preserving the datapath's no-loss
  invariant for committed transfers.
* **Power-gated routers** — all adjacent channels go down and every packet
  buffered in the router is lost (SRAM state does not survive gating).
  Frozen VCs are exempt: SPIN owns them and reclaims them through its own
  kill/watchdog machinery.
* **SM faults** — consulted at SM send time on each link; the first
  matching policy wins.  Drops and delays model lossy/slow control wiring;
  corruption truncates the SM's recorded path, which downstream safety
  checks (malformed-path drops, the executor's spin safety guard) must
  absorb.
* **Stranded packet reclamation** — a packet whose every legal output port
  is dead is *stranded*.  After ``drop_stranded_after`` cycles without an
  alive route it is dropped and counted (``packets_lost``), releasing its
  buffer so the rest of the network keeps flowing.

All randomness comes from a :class:`DeterministicRng` forked from
``seed``, so a fault schedule replays identically for a fixed seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import FaultInjectionError
from repro.faults.events import (
    FaultSchedule,
    LinkStateEvent,
    RouterStateEvent,
    SmFaultPolicy,
)
from repro.sim.rng import DeterministicRng

#: How often (cycles) the stranded-packet scan runs while links are dead.
_SCAN_INTERVAL = 8


class FaultInjector:
    """Executes a deterministic fault schedule against one network.

    Args:
        schedule: The fault program (or a spec string already parsed via
            :func:`~repro.faults.spec.parse_fault_spec`).
        seed: Seed of the injector's private RNG stream (probabilistic SM
            policies); fixing it fixes the entire fault realization.
        drop_stranded_after: Cycles a packet may sit with no alive route
            before it is dropped and counted as lost.  0 disables
            reclamation (stranded packets wait for a link_up forever).
    """

    def __init__(self, schedule: FaultSchedule, seed: int = 0,
                 drop_stranded_after: int = 512) -> None:
        if not isinstance(schedule, FaultSchedule):
            raise FaultInjectionError(
                "FaultInjector needs a FaultSchedule "
                "(use parse_fault_spec for spec strings)",
                got=type(schedule).__name__)
        if drop_stranded_after < 0:
            raise FaultInjectionError("drop_stranded_after must be >= 0",
                                      got=drop_stranded_after)
        self.schedule = schedule
        self.seed = seed
        self.rng = DeterministicRng(seed).fork("faults")
        self.drop_stranded_after = drop_stranded_after
        self.network = None
        #: Timed events sorted by (cycle, schedule order); _next_event indexes.
        self._events: List[object] = sorted(
            schedule.timed_events,
            key=lambda e: e.cycle)
        self._next_event = 0
        #: Remaining fault budget per SM policy (None = unlimited).
        self._budgets: List[Optional[int]] = [
            policy.count for policy in schedule.sm_policies]
        #: Total faults applied so far (timed events + SM faults).
        self.faults_fired = 0
        #: Router id -> directed link keys (src, src_port) touching it.
        self._links_of_router: Dict[int, List[Tuple[int, int]]] = {}
        #: (min, max) endpoint pair -> directed link keys of the channel.
        self._channel_links: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        #: Gated router -> directed link keys that were up at gating time.
        self._gated: Dict[int, List[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, network) -> None:
        """Attach to a network and validate every event against its fabric."""
        self.network = network
        network.fault_injector = self
        self._links_of_router = {}
        self._channel_links = {}
        for (src, src_port), link in network.links.items():
            key = (src, src_port)
            self._links_of_router.setdefault(link.src, []).append(key)
            self._links_of_router.setdefault(link.dst, []).append(key)
            channel = (min(link.src, link.dst), max(link.src, link.dst))
            self._channel_links.setdefault(channel, []).append(key)
        self._validate_events()

    def _validate_events(self) -> None:
        num_routers = len(self.network.routers)
        for event in self._events:
            if isinstance(event, LinkStateEvent):
                channel = (min(event.a, event.b), max(event.a, event.b))
                if channel not in self._channel_links:
                    raise FaultInjectionError(
                        "fault names a nonexistent channel",
                        event=event.describe())
            elif isinstance(event, RouterStateEvent):
                if event.router >= num_routers:
                    raise FaultInjectionError(
                        "fault names a nonexistent router",
                        event=event.describe(), num_routers=num_routers)

    # ------------------------------------------------------------------
    # Cycle hook
    # ------------------------------------------------------------------
    def phase_control(self, cycle: int) -> None:
        events = self._events
        while self._next_event < len(events):
            event = events[self._next_event]
            if event.cycle > cycle:
                break
            self._next_event += 1
            self._apply_event(event, cycle)
        if (
            self.drop_stranded_after
            and self.network.dead_link_count
            and cycle % _SCAN_INTERVAL == 0
        ):
            self._reclaim_stranded(cycle)

    # ------------------------------------------------------------------
    # Timed events
    # ------------------------------------------------------------------
    def _apply_event(self, event, now: int) -> None:
        stats = self.network.stats
        stats.count("faults_injected")
        self.faults_fired += 1
        if isinstance(event, LinkStateEvent):
            channel = (min(event.a, event.b), max(event.a, event.b))
            for key in self._channel_links[channel]:
                self.network.set_link_state(key[0], key[1], event.up, now)
        elif isinstance(event, RouterStateEvent):
            if event.up:
                self._ungate_router(event.router, now)
            else:
                self._gate_router(event.router, now)

    def _gate_router(self, router_id: int, now: int) -> None:
        if router_id in self._gated:
            return
        network = self.network
        network.stats.count("router_down_events")
        was_up = []
        for key in self._links_of_router.get(router_id, ()):
            if network.links[key].up:
                was_up.append(key)
                network.set_link_state(key[0], key[1], False, now)
        self._gated[router_id] = was_up
        # Power gating loses buffered state: drop resident packets.
        router = network.routers[router_id]
        for _, vcs in router.all_inports():
            for vc in vcs:
                if vc.packet is not None and not vc.frozen:
                    self._drop_packet(router, vc, now, reason="power_gate")

    def _ungate_router(self, router_id: int, now: int) -> None:
        network = self.network
        network.stats.count("router_up_events")
        for key in self._gated.pop(router_id, ()):
            network.set_link_state(key[0], key[1], True, now)

    # ------------------------------------------------------------------
    # SM faults (called by the SPIN framework's SM transport)
    # ------------------------------------------------------------------
    def filter_sm(self, sm, link, now: int) -> Optional[Tuple[object, int]]:
        """Apply SM fault policies to one special-message send.

        Returns:
            ``(sm, extra_delay)`` — possibly corrupted, possibly delayed —
            or None when the SM is dropped.  Counting happens here.
        """
        stats = self.network.stats
        for index, policy in enumerate(self.schedule.sm_policies):
            if not policy.active_at(now) or not policy.matches_kind(sm.kind):
                continue
            budget = self._budgets[index]
            if budget is not None and budget <= 0:
                continue
            if policy.probability < 1.0 and not self.rng.bernoulli(
                    policy.probability):
                continue
            if budget is not None:
                self._budgets[index] = budget - 1
            self.faults_fired += 1
            if policy.action == "drop":
                stats.count("sm_dropped")
                stats.count(f"sm_dropped_{sm.kind}")
                return None
            if policy.action == "delay":
                stats.count("sm_delayed")
                return sm, policy.delay
            # corrupt: truncate the recorded path; an empty path cannot be
            # truncated, so the SM is lost outright.
            stats.count("sm_corrupted")
            if not sm.path:
                stats.count("sm_dropped")
                stats.count(f"sm_dropped_{sm.kind}")
                return None
            return sm.with_path(sm.path[:-1]), 0
        return sm, 0

    # ------------------------------------------------------------------
    # Stranded packet reclamation
    # ------------------------------------------------------------------
    def _reclaim_stranded(self, now: int) -> None:
        network = self.network
        threshold = self.drop_stranded_after
        victims = []
        for router, _, vc in network.occupied_vcs():
            packet = vc.packet
            since = packet.route_state.get("stranded_since")
            if since is None or now - since < threshold:
                continue
            if vc.frozen or not vc.fully_arrived(now):
                continue
            if self._has_alive_route(router, packet):
                packet.route_state.pop("stranded_since", None)
                continue
            victims.append((router, vc))
        for router, vc in victims:
            self._drop_packet(router, vc, now, reason="stranded")

    def _has_alive_route(self, router, packet) -> bool:
        if packet.reached_phase_target(router.id):
            return True
        for port in self.network.routing.candidate_outports(router, packet):
            link = router.out_links.get(port)
            if link is None or link.up:
                return True
        return False

    def _drop_packet(self, router, vc, now: int, reason: str) -> None:
        packet = vc.release(now)
        network = self.network
        network.note_vc_released(router, vc)
        network.stats.record_loss(packet, now)
        network.stats.count(f"packets_lost_{reason}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def gated_routers(self) -> Tuple[int, ...]:
        """Currently power-gated router ids, ascending."""
        return tuple(sorted(self._gated))

    def __repr__(self) -> str:
        return (f"FaultInjector(events={len(self._events)}, "
                f"policies={len(self.schedule.sm_policies)}, "
                f"seed={self.seed})")
