"""Golden-trace recording: compact per-cycle event digests.

A :class:`TraceRecorder` is a simulator *observer* that condenses each
settled cycle into a small, uid-free record of observable behaviour:

    [cycle, created Δ, injected Δ, delivered Δ, lost Δ,
     packets in flight, NIC backlog, frozen VCs, [event name, Δ] ...]

Packet uids are deliberately excluded — they come from a process-global
counter, so they depend on what else ran in the process; everything in a
record is a pure function of (design, traffic, seed, cycles).  Each record
is hashed (CRC-32 over its canonical JSON) into a per-cycle digest and the
whole run into one SHA-256 — two runs agree iff their digests agree, and
when they do not, :func:`first_divergence` plus :func:`divergence_report`
turn the two record streams into a readable first-difference diff.

Fixture files (``tests/fixtures/golden/*.json``, written by
``python -m repro.verify.golden``) carry the records alongside the digests
so a regression failure can show *what* changed, not just that something
did.  See docs/VERIFY.md.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Fixture schema identifier.
TRACE_FORMAT = "repro.golden-trace/v1"


class TraceRecorder:
    """Records one compact behavioural record per simulated cycle.

    Register via :meth:`repro.sim.engine.Simulator.register_observer` so
    records always describe settled post-cycle state.  Composes freely with
    the invariant oracle (observers run in registration order).
    """

    def __init__(self, network) -> None:
        self.network = network
        self.records: List[list] = []
        self.cycle_digests: List[int] = []
        self._last_counts = (0, 0, 0, 0)
        self._last_events: Dict[str, int] = {}

    # -- observer hook -------------------------------------------------
    def phase_collect(self, cycle: int) -> None:
        stats = self.network.stats
        counts = (stats.packets_created, stats.packets_injected,
                  stats.packets_delivered, stats.packets_lost)
        deltas = [now - before
                  for now, before in zip(counts, self._last_counts)]
        self._last_counts = counts
        events = []
        for name in sorted(stats.events):
            value = stats.events[name]
            delta = value - self._last_events.get(name, 0)
            if delta:
                events.append([name, delta])
                self._last_events[name] = value
        frozen = 0
        spin = self.network.spin
        if spin is not None:
            frozen = spin.frozen_vc_count()
        record = [cycle] + deltas + [
            self.network.packets_in_flight(),
            self.network.total_backlog(),
            frozen,
        ] + events
        self.records.append(record)
        self.cycle_digests.append(record_digest(record))

    # -- summaries -----------------------------------------------------
    def digest(self) -> str:
        """SHA-256 over the canonical JSON of all records."""
        return trace_digest(self.records)


def record_digest(record: list) -> int:
    """CRC-32 of one record's canonical JSON (stable across processes)."""
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
    return zlib.crc32(payload.encode("ascii"))


def trace_digest(records: List[list]) -> str:
    """SHA-256 hex digest over the canonical JSON of a record stream."""
    hasher = hashlib.sha256()
    for record in records:
        payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
        hasher.update(payload.encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def first_divergence(golden: List[list], observed: List[list]
                     ) -> Optional[Tuple[int, Optional[list], Optional[list]]]:
    """First index where two record streams differ, or None when equal.

    Returns ``(index, golden_record, observed_record)``; a record is None
    when one stream ended early.
    """
    for index in range(max(len(golden), len(observed))):
        expected = golden[index] if index < len(golden) else None
        actual = observed[index] if index < len(observed) else None
        if expected != actual:
            return index, expected, actual
    return None


def divergence_report(golden: List[list], observed: List[list],
                      context: int = 2) -> str:
    """Human-readable first-difference diff between two record streams."""
    hit = first_divergence(golden, observed)
    if hit is None:
        return "traces are identical"
    index, expected, actual = hit
    lines = [f"first divergence at record {index} "
             f"(cycle {expected[0] if expected else actual[0]}):"]
    start = max(0, index - context)
    for i in range(start, index):
        lines.append(f"  ...    {golden[i]}")
    lines.append(f"  golden   {expected}")
    lines.append(f"  observed {actual}")
    lines.append(
        "  fields: [cycle, created, injected, delivered, lost, in_flight, "
        "backlog, frozen_vcs, [event, delta]...]")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Fixture I/O
# ----------------------------------------------------------------------
def fixture_payload(scenario: str, spec_dict: dict,
                    recorder: TraceRecorder) -> dict:
    """The JSON document committed as a golden-trace fixture."""
    return {
        "format": TRACE_FORMAT,
        "scenario": scenario,
        "spec": spec_dict,
        "cycles": len(recorder.records),
        "digest": recorder.digest(),
        "cycle_digests": recorder.cycle_digests,
        "records": recorder.records,
    }


def save_fixture(path, payload: dict) -> None:
    """Write a fixture document (stable formatting for clean diffs)."""
    with open(path, "w", encoding="ascii") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"),
                  sort_keys=True)
        handle.write("\n")


def load_fixture(path) -> dict:
    """Read and validate a golden-trace fixture.

    Raises:
        ConfigurationError: On a wrong or unversioned format marker.
    """
    with open(path, "r", encoding="ascii") as handle:
        payload = json.load(handle)
    if payload.get("format") != TRACE_FORMAT:
        raise ConfigurationError(
            "not a golden-trace fixture",
            path=str(path), format=payload.get("format"),
            expected=TRACE_FORMAT)
    return payload
