"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.

Every error carries an optional **context dict** of structured diagnostic
fields (cycle, router id, FSM state, ...) supplied as keyword arguments:

    raise SimulationError("unresolved deadlock", cycle=1042, router=3)

The context is appended to the message (stable ``key=value`` order) and kept
machine-readable on the ``context`` attribute so harnesses can log it.
"""

from __future__ import annotations

from typing import Any, Dict


class ReproError(Exception):
    """Base class for all errors raised by this package.

    Attributes:
        context: Structured diagnostic fields attached at raise time.
    """

    def __init__(self, message: str = "", **context: Any) -> None:
        self.context: Dict[str, Any] = dict(context)
        if context:
            details = ", ".join(
                f"{key}={value!r}" for key, value in sorted(context.items()))
            message = f"{message} [{details}]" if message else f"[{details}]"
        super().__init__(message)


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class TopologyError(ReproError):
    """A topology is malformed (bad ports, unreachable nodes, ...)."""


class RoutingError(ReproError):
    """A routing algorithm produced an illegal decision."""


class ProtocolError(ReproError):
    """The network datapath violated one of its invariants.

    This is raised by internal self-checks (e.g. a flit pushed into an
    occupied virtual channel) and always indicates a simulator bug, never a
    property of the simulated design.
    """


class InvariantViolation(ProtocolError):
    """A runtime invariant checked by :mod:`repro.verify` (or an inline
    self-check on a hot path) failed.

    Unlike a bare ``assert``, an :class:`InvariantViolation` survives
    ``python -O`` and always carries structured context — at minimum the
    ``invariant`` name plus the router/cycle where the check tripped::

        raise InvariantViolation("credit counter drifted",
                                 invariant="credit_conservation",
                                 router=3, cycle=1042)

    The ``invariant`` key is machine-readable: the oracle's mutation-kill
    property tests assert that a given corruption trips exactly the
    intended invariant family (see docs/VERIFY.md for the catalog).
    """

    @property
    def invariant(self) -> str:
        """Name of the violated invariant family ("" if not attached)."""
        return str(self.context.get("invariant", ""))


class SimulationError(ReproError):
    """A simulation could not be completed (e.g. unresolved deadlock when the
    configuration promised deadlock freedom)."""


class FaultInjectionError(ReproError):
    """A fault specification is malformed or a fault could not be applied
    (unknown event kind, bad parameters, nonexistent link or router)."""
