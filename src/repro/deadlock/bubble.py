"""Localized Bubble Flow Control (BFC) on a torus — the Flow Control row of
Table I (Carrion et al., HiPC 1997; Puente et al.'s adaptive bubble router).

Dimension-order routing on a torus has cyclic channel dependencies inside
each unidirectional ring (wraparound), so Dally's condition fails.  BFC
restores deadlock freedom with an injection-time restriction instead of
extra VCs: a packet may *enter* a ring (from the NIC, or when turning from
the X dimension into the Y dimension) only if the ring retains at least one
free packet buffer after the entry.  Movement *within* a ring needs only
the normal free target buffer.  Invariant: every unidirectional ring always
holds >= 1 bubble, so some packet in any full ring can always advance.

This is the paper's "Flow Control" theory exemplar: no VCs needed for
deadlock freedom, at the price of injection restrictions and idle bubble
capacity (Sec. II-C discusses why such schemes lost to VC-based designs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.network.packet import Packet
from repro.network.router import is_injection_port
from repro.routing.dor import DimensionOrderRouting
from repro.topology.mesh import EAST, NORTH, OPPOSITE, SOUTH, WEST
from repro.topology.torus import TorusTopology

#: Ring key: ("x"|"y", row-or-column index, direction port).
RingKey = Tuple[str, int, int]


def ring_of_hop(topology: TorusTopology, router: int, outport: int) -> RingKey:
    """The unidirectional ring a hop through ``outport`` travels in."""
    x, y = topology.coordinates(router)
    if outport in (EAST, WEST):
        return ("x", y, outport)
    return ("y", x, outport)


class BubbleFlowControlRouting(DimensionOrderRouting):
    """Torus XY routing with localized bubble flow control."""

    name = "Bubble-DOR"
    theory = "FlowCtrl"
    minimal = True
    max_misroutes = 0

    def _setup(self) -> None:
        if not isinstance(self.topology, TorusTopology):
            raise ConfigurationError("bubble flow control targets a torus")
        self._ring_vcs: Dict[RingKey, List] = {}
        self._build_ring_index()

    def _build_ring_index(self) -> None:
        """VCs belonging to each unidirectional ring.

        A packet moving through port ``d`` lands at the downstream router's
        ``OPPOSITE[d]`` input port; those input VCs are the ring's buffers.
        """
        topology: TorusTopology = self.topology
        for router in self.network.routers:
            for outport in (EAST, WEST, NORTH, SOUTH):
                key = ring_of_hop(topology, router.id, outport)
                neighbor, dst_port = router.out_neighbors[outport]
                vcs = neighbor.vcs_at(dst_port)
                self._ring_vcs.setdefault(key, []).extend(vcs)

    def free_ring_buffers(self, key: RingKey, now: int) -> int:
        """Idle packet buffers currently in a ring."""
        return sum(1 for vc in self._ring_vcs[key] if vc.is_idle(now))

    def _entering_ring(self, packet: Packet, inport: int,
                       outport: int) -> bool:
        """Whether this hop enters a ring rather than continuing in it."""
        if is_injection_port(inport):
            return True
        # Continuing straight in the same ring: the arrival port is the
        # opposite of the departure port (E in -> E out means came from W).
        return OPPOSITE[inport] != outport

    def decide(self, router, inport: int, packet: Packet,
               now: int) -> Optional[int]:
        packet.route_state["bfc_inport"] = inport
        return super().decide(router, inport, packet, now)

    def pick_downstream_vc(self, router, packet: Packet, outport: int,
                           now: int):
        vc = super().pick_downstream_vc(router, packet, outport, now)
        if vc is None:
            return None
        inport = packet.route_state.get("bfc_inport")
        if inport is not None and self._entering_ring(packet, inport, outport):
            key = ring_of_hop(self.topology, router.id, outport)
            # Entry must leave a bubble behind: the target buffer plus at
            # least one more free buffer in the ring.
            if self.free_ring_buffers(key, now) < 2:
                return None
        return vc

    def wait_targets(self, router, packet: Packet, now: int):
        """For the oracle: a bubble-blocked packet waits on the whole ring.

        It can move once *any* ring buffer beyond its target frees up, so
        its effective wait set is every buffer of the ring it wants to
        enter.
        """
        targets = super().wait_targets(router, packet, now)
        expanded = []
        inport = packet.route_state.get("bfc_inport")
        for outport, vcs in targets:
            if inport is not None and self._entering_ring(packet, inport,
                                                          outport):
                key = ring_of_hop(self.topology, router.id, outport)
                expanded.append((outport, list(self._ring_vcs[key])))
            else:
                expanded.append((outport, vcs))
        return expanded
