"""Table III — the evaluated network configurations.

Regenerates the design matrix (topology, adaptivity, minimality, theory,
avoidance/recovery) from the configuration registry and sanity-builds every
design point.
"""

from repro.harness.configs import ALL_DESIGNS, build_network
from repro.harness.tables import format_table

from benchmarks._common import run_once, write_result

PAPER_ROWS = [
    # (design key, adaptivity, minimal)
    ("dfly:ugal-dally-3vc", "full", False),
    ("dfly:minimal-spin-1vc", "none", True),
    ("dfly:favors-nmin-spin-1vc", "full", False),
    ("mesh:westfirst-3vc", "partial", True),
    ("mesh:escapevc-3vc", "full", True),
    ("mesh:staticbubble-3vc", "full", True),
    ("mesh:favors-min-spin-1vc", "full", True),
]


def run_experiment():
    rows = []
    for key, adaptivity, minimal in PAPER_ROWS:
        design = ALL_DESIGNS[key]
        network = build_network(design, mesh_side=4, dragonfly=(2, 4, 2))
        rows.append([
            design.topology,
            network.routing.name,
            adaptivity,
            "yes" if minimal else "no",
            design.theory,
            design.scheme,
            design.vcs_per_vnet,
        ])
    table = format_table(
        ["Topology", "Design", "Adaptive", "Minimal", "Theory", "Type",
         "VCs"],
        rows,
        title="Table III: evaluated network configurations")
    return table, rows


def test_table3(benchmark):
    table, rows = run_once(benchmark, run_experiment)
    write_result("table3_configs", table)
    theories = {row[4] for row in rows}
    assert theories == {"Dally", "SPIN", "Duato", "FlowCtrl"}
    # Every SPIN design is a recovery scheme, every Dally/Duato design here
    # is avoidance — the paper's Table III split.
    for row in rows:
        if row[4] == "SPIN":
            assert row[5] == "recovery"
        if row[4] in ("Dally", "Duato"):
            assert row[5] == "avoidance"
