"""Fig. 7 — 8x8 mesh latency vs injection rate.

Regenerates the latency curves for the paper's mesh designs:

* 3-VC group: west-first (Dally avoidance), escape-VC (Duato avoidance),
  Static Bubble (flow-control recovery), minimal adaptive + SPIN.
  Paper: SPIN >= escape-VC >= static-bubble >= west-first on the adaptive-
  friendly patterns; all about equal on tornado (where minimal adaptive
  degenerates to west-first-like behaviour).
* 1-VC pair: west-first vs FAvORS-Min + SPIN.  Paper: FAvORS wins 80%
  (transpose), 20% (bit reverse), 18% (bit rotation); west-first marginally
  (~3%) better on uniform random.
"""

from repro.harness.runner import latency_curve
from repro.harness.tables import format_table

from benchmarks._common import MESH_SIDE, TDD, run_once, scale, sim_config, write_result

RATES = scale(
    [0.05, 0.10, 0.15, 0.20],
    [0.04, 0.08, 0.12, 0.16, 0.22, 0.30],
    [0.02, 0.06, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.50],
)
PATTERNS = scale(["uniform", "transpose"],
                 ["uniform", "transpose", "tornado"],
                 ["uniform", "transpose", "bit_reverse", "tornado"])
DESIGNS_3VC = [
    ("WestFirst 3VC", "mesh:westfirst-3vc"),
    ("EscapeVC 3VC", "mesh:escapevc-3vc"),
    ("StaticBubble 3VC", "mesh:staticbubble-3vc"),
    ("MinAdaptive-SPIN 3VC", "mesh:minadaptive-spin-3vc"),
]
DESIGNS_1VC = [
    ("WestFirst 1VC", "mesh:westfirst-1vc"),
    ("FAvORS-Min-SPIN 1VC", "mesh:favors-min-spin-1vc"),
]


def run_experiment():
    sim = sim_config()
    results = {}
    lines = []
    for pattern in PATTERNS:
        for label, design in DESIGNS_3VC + DESIGNS_1VC:
            points, saturation = latency_curve(
                design, pattern, RATES, sim, mesh_side=MESH_SIDE, tdd=TDD)
            results[(pattern, label)] = (points, saturation)
            curve = "  ".join(
                f"{p.injection_rate:.2f}->{p.mean_latency:.0f}"
                for p in points)
            lines.append([pattern, label, saturation, curve])
    table = format_table(
        ["Pattern", "Design", "Saturation", "Latency curve (rate->cycles)"],
        lines,
        title=f"Fig. 7: {MESH_SIDE}x{MESH_SIDE} mesh latency vs injection")
    return table, results


def test_fig7(benchmark):
    table, results = run_once(benchmark, run_experiment)
    write_result("fig7_mesh", table)

    def sat(pattern, label):
        return results[(pattern, label)][1]

    # SPIN's unrestricted 3-VC adaptive routing at least matches the
    # restricted Dally baseline on the adaptive-friendly patterns.
    adaptive_friendly = [p for p in ("transpose", "bit_reverse")
                         if p in PATTERNS]
    for pattern in adaptive_friendly:
        assert (sat(pattern, "MinAdaptive-SPIN 3VC")
                >= sat(pattern, "WestFirst 3VC")), pattern
    # Tornado degenerates minimal adaptive to west-first-like behaviour:
    # the 3-VC designs all but tie (paper Sec. VI-D).
    if "tornado" in PATTERNS:
        assert abs(sat("tornado", "MinAdaptive-SPIN 3VC")
                   - sat("tornado", "WestFirst 3VC")) <= 0.06
    # FAvORS-Min (1 VC, fully adaptive, SPIN) beats west-first 1VC on
    # transpose — the paper's 80% headline.
    assert (sat("transpose", "FAvORS-Min-SPIN 1VC")
            > sat("transpose", "WestFirst 1VC"))
    # ... and uniform random is a rough tie (paper: west-first +3%).
    uniform_wf = sat("uniform", "WestFirst 1VC")
    uniform_favors = sat("uniform", "FAvORS-Min-SPIN 1VC")
    assert abs(uniform_wf - uniform_favors) <= 0.08
