#!/usr/bin/env python
"""SPIN on an irregular fabric: a power-gated mesh.

The paper positions SPIN as the natural deadlock-freedom framework for
irregular networks (faulty/power-gated NoCs, random datacenter graphs,
accelerator fabrics): the classic alternative, up*/down* routing, must
restrict turns against a spanning tree, stretching paths; SPIN needs no
topology knowledge at all and routes every packet minimally.

This example knocks random links out of an 8x8 mesh (as a power-gating
controller would), then compares:

  * up*/down* (Dally's theory, avoidance — the ARIADNE-style baseline)
  * minimal adaptive + SPIN (recovery, unrestricted)

Run:
    python examples/irregular_fabric.py
"""

from repro.config import NetworkConfig, SimulationConfig, SpinParams
from repro.network.network import Network
from repro.routing.adaptive import MinimalAdaptiveRouting
from repro.routing.table import UpDownRouting
from repro.sim.rng import DeterministicRng
from repro.stats.sweep import run_point
from repro.topology.irregular import faulty_mesh
from repro.traffic.generator import SyntheticTraffic
from repro.traffic.patterns import make_pattern

SIDE = 8
FAILED_LINKS = 16
RATE = 0.05
SIM = SimulationConfig(warmup_cycles=500, measure_cycles=2500,
                       drain_cycles=3000)


def make_topology():
    return faulty_mesh(SIDE, SIDE, num_failed_links=FAILED_LINKS,
                       rng=DeterministicRng(42))


def run(design_name, routing, spin):
    def network_factory():
        return Network(make_topology(), NetworkConfig(vcs_per_vnet=1),
                       routing(), spin=spin, seed=7)

    def traffic_factory(network, rate, stop_at):
        pattern = make_pattern("uniform", network.topology.num_nodes)
        return SyntheticTraffic(network, pattern, rate, seed=7,
                                stop_at=stop_at)

    network, point = run_point(network_factory, traffic_factory, SIM,
                               injection_rate=RATE)
    return design_name, network, point


def main():
    topology = make_topology()
    print(f"Power-gated {SIDE}x{SIDE} mesh: {FAILED_LINKS} links disabled, "
          f"{topology.num_routers} routers still connected.")
    print(f"Uniform random traffic at {RATE} flits/node/cycle, 1 VC.\n")

    results = [
        run("up*/down* (avoidance)", lambda: UpDownRouting(7), None),
        run("MinAdaptive + SPIN (recovery)",
            lambda: MinimalAdaptiveRouting(7), SpinParams(tdd=64)),
    ]

    header = (f"{'design':32s} {'mean lat':>9s} {'p99 lat':>9s} "
              f"{'mean hops':>10s} {'delivered':>10s} {'spins':>6s}")
    print(header)
    print("-" * len(header))
    for name, network, point in results:
        print(f"{name:32s} {point.mean_latency:9.1f} "
              f"{point.p99_latency:9.1f} "
              f"{network.stats.mean_hops():10.2f} "
              f"{point.delivery_ratio:10.3f} "
              f"{point.events.get('spins', 0):6d}")

    updown_hops = results[0][1].stats.mean_hops()
    spin_hops = results[1][1].stats.mean_hops()
    if spin_hops < updown_hops:
        print(f"\nSPIN's unrestricted minimal routing saves "
              f"{100 * (1 - spin_hops / updown_hops):.1f}% hops per packet "
              f"versus the spanning-tree-restricted baseline — the paper's "
              f"argument for SPIN on irregular topologies (Sec. I).")


if __name__ == "__main__":
    main()
