"""Unit tests for the exception hierarchy and network-level utilization."""

import pytest

from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from repro.sim.engine import Simulator

from tests.conftest import _plant_packet, make_mesh_network


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, TopologyError, RoutingError, ProtocolError,
        SimulationError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catching_base_catches_library_failures(self):
        from repro.config import NetworkConfig

        with pytest.raises(ReproError):
            NetworkConfig(vcs_per_vnet=0)


class TestNetworkUtilization:
    def test_idle_network_reads_fully_idle(self):
        network = make_mesh_network(side=4)
        network.reset_link_utilization()
        network.now = 100
        flit, sm, idle = network.mean_link_utilization()
        assert flit == 0.0 and sm == 0.0 and idle == 1.0

    def test_traffic_shows_up_in_flit_share(self):
        network = make_mesh_network(side=4)
        network.stats.open_window(0, None)
        network.reset_link_utilization()
        for src, inport, dst in [(0, 2, 3), (12, 1, 15), (5, 0, 10)]:
            _plant_packet(network, src, inport, dst)
        sim = Simulator()
        sim.register(network)
        sim.run(50)
        flit, sm, idle = network.mean_link_utilization()
        assert flit > 0.0
        assert sm == 0.0
        assert idle < 1.0

    def test_reset_clears_history(self):
        network = make_mesh_network(side=4)
        network.stats.open_window(0, None)
        _plant_packet(network, 0, 2, 15)
        sim = Simulator()
        sim.register(network)
        sim.run(50)
        network.reset_link_utilization()
        sim.run(10)
        flit, _, _ = network.mean_link_utilization()
        assert flit == 0.0  # all movement happened before the reset
