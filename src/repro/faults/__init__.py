"""Runtime fault injection and resilience (`repro.faults`).

The paper positions SPIN as the deadlock-freedom framework for irregular and
*faulty* fabrics (Sec. VII); this package makes faults a runtime phenomenon
instead of a topology-construction-time one.  A :class:`FaultInjector` is a
regular simulator component that executes a deterministic, seedable
:class:`FaultSchedule` of events — links dying and reviving mid-run, routers
power-gating, SPIN special messages being dropped, delayed or corrupted in
flight — while the hardened SPIN control plane (watchdogs + bounded retry,
see ``docs/FAULTS.md``) and the routing layer (dead-link rerouting, stranded
packet reclamation) degrade gracefully instead of wedging.

Typical use::

    from repro.faults import FaultInjector, parse_fault_spec

    schedule = parse_fault_spec("link_down@1000:r3-r4,sm_drop:p=0.01")
    injector = FaultInjector(schedule, seed=7)
    injector.bind(network)
    simulator.register(injector)   # before the network component
    simulator.register(network)

or via the CLI: ``repro run ... --faults "link_down@1000:r3-r4" --fault-seed 7``.
"""

from repro.faults.events import (
    LinkStateEvent,
    RouterStateEvent,
    SmFaultPolicy,
    FaultSchedule,
)
from repro.faults.injector import FaultInjector
from repro.faults.spec import (
    canonical_fault_spec,
    format_fault_spec,
    parse_fault_spec,
)

__all__ = [
    "FaultInjector",
    "FaultSchedule",
    "LinkStateEvent",
    "RouterStateEvent",
    "SmFaultPolicy",
    "canonical_fault_spec",
    "format_fault_spec",
    "parse_fault_spec",
]
