"""Shared infrastructure for the figure/table reproduction benchmarks.

Every benchmark runs its experiment exactly once (``benchmark.pedantic``
with one round), prints the regenerated table, and persists it under
``benchmarks/results/`` so the output survives pytest's capture.

Scaling: the paper simulates 100K cycles on gem5; pure Python is orders of
magnitude slower, so benchmarks default to reduced cycle counts, a reduced
dragonfly, and coarser rate grids (DESIGN.md substitution note 4).  Set
``REPRO_FULL=1`` for paper-scale parameters or ``REPRO_QUICK=1`` to slash
runtimes further (CI smoke mode).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.config import SimulationConfig

RESULTS_DIR = Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_QUICK", "") not in ("", "0")
FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")


def scale(quick, normal, full):
    """Pick a parameter by run scale."""
    if FULL:
        return full
    if QUICK:
        return quick
    return normal


#: Mesh side used by mesh experiments (paper: 8).
MESH_SIDE = scale(4, 8, 8)
#: Dragonfly (p, a, h) (paper: (4, 8, 4) -> 1056 terminals).
DRAGONFLY = scale((2, 4, 2), (2, 4, 2), (4, 8, 4))
#: Detection threshold for scaled runs (paper default 128 assumes 100K-cycle
#: runs; scaled runs use a proportionally smaller threshold).
TDD = scale(32, 32, 128)


def sim_config(measure=None, warmup=None, drain=None,
               abort_cycles=1500) -> SimulationConfig:
    """Standard scaled simulation windows."""
    return SimulationConfig(
        warmup_cycles=warmup or scale(200, 400, 2000),
        measure_cycles=measure or scale(1000, 2000, 20000),
        drain_cycles=drain or scale(1000, 2000, 10000),
        deadlock_abort_cycles=abort_cycles,
    )


def write_result(name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
