"""Command-line interface.

Usage examples::

    python -m repro.cli designs
    python -m repro.cli run --design mesh:favors-min-spin-1vc \\
        --pattern transpose --rate 0.15
    python -m repro.cli sweep --design mesh:westfirst-3vc --pattern uniform \\
        --rates 0.05,0.1,0.15,0.2,0.3
    python -m repro.cli sweep --design spin_mesh --pattern uniform \\
        --rates 0.05,0.1,0.15 --jobs 4 --output out.json
    python -m repro.cli area --radix 5 --vcs 3
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from repro.config import SimulationConfig
from repro.errors import ConfigurationError, ReproError
from repro.faults import parse_fault_spec
from repro.harness.configs import ALL_DESIGNS, get_design, resolve_design_name
from repro.harness.runner import run_design
from repro.harness.tables import format_table
from repro.sim import ENGINE_ENV_VAR, available_engines
from repro.verify.differential import DEFAULT_TRIAD, run_conformance
from repro.power.model import AreaModel, EnergyModel, RouterSpec
from repro.stats.results import save_results


def _sim_config(args) -> SimulationConfig:
    return SimulationConfig(
        warmup_cycles=args.warmup,
        measure_cycles=args.measure,
        drain_cycles=args.drain,
        deadlock_abort_cycles=args.abort_cycles,
    )


def _parse_dragonfly(text: str) -> tuple:
    """Parse and validate ``p,a,h`` dragonfly dimensions."""
    parts = text.split(",")
    if len(parts) != 3:
        raise ConfigurationError(
            "--dragonfly expects exactly three comma-separated integers "
            "p,a,h (e.g. 2,4,2)", value=text)
    try:
        dims = tuple(int(part) for part in parts)
    except ValueError:
        raise ConfigurationError(
            "--dragonfly dimensions must be integers (e.g. 2,4,2)",
            value=text) from None
    if min(dims) < 1:
        raise ConfigurationError(
            "--dragonfly dimensions must all be >= 1", value=text)
    return dims


def _validate_run_args(args) -> None:
    """Friendly rejection of out-of-range CLI inputs (fail before cycles)."""
    rate = getattr(args, "rate", None)
    rates = ([float(x) for x in args.rates.split(",")]
             if getattr(args, "rates", None) else [])
    for value in ([rate] if rate is not None else rates):
        if not 0.0 < value <= 1.0:
            raise ConfigurationError(
                "offered load must be in (0, 1] flits/node/cycle",
                rate=value)
    if args.seed < 0:
        raise ConfigurationError("--seed must be >= 0", seed=args.seed)
    if args.tdd is not None and args.tdd < 1:
        raise ConfigurationError("--tdd must be >= 1", tdd=args.tdd)
    if args.mesh_side < 2:
        raise ConfigurationError("--mesh-side must be >= 2",
                                 mesh_side=args.mesh_side)
    if args.fault_seed < 0:
        raise ConfigurationError("--fault-seed must be >= 0",
                                 fault_seed=args.fault_seed)
    if getattr(args, "jobs", 1) < 1:
        raise ConfigurationError("--jobs must be >= 1", jobs=args.jobs)
    if getattr(args, "retries", 0) < 0:
        raise ConfigurationError("--retries must be >= 0",
                                 retries=args.retries)
    max_failures = getattr(args, "max_failures", None)
    if max_failures is not None and max_failures < 0:
        raise ConfigurationError("--max-failures must be >= 0",
                                 max_failures=max_failures)
    hang_timeout = getattr(args, "hang_timeout", None)
    if hang_timeout is not None and hang_timeout <= 0:
        raise ConfigurationError("--hang-timeout must be positive",
                                 hang_timeout=hang_timeout)
    if args.faults:
        parse_fault_spec(args.faults)  # raises FaultInjectionError on typos


def _add_run_args(parser: argparse.ArgumentParser,
                  design_required: bool = True) -> None:
    parser.add_argument("--design", required=design_required,
                        help="design name (see `designs`)")
    parser.add_argument("--pattern", default="uniform",
                        help="traffic pattern name")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--mesh-side", type=int, default=8)
    parser.add_argument("--dragonfly", default="2,4,2",
                        help="p,a,h (paper scale: 4,8,4)")
    parser.add_argument("--tdd", type=int, default=None,
                        help="SPIN detection threshold override")
    parser.add_argument("--warmup", type=int, default=500)
    parser.add_argument("--measure", type=int, default=3000)
    parser.add_argument("--drain", type=int, default=3000)
    parser.add_argument("--abort-cycles", type=int, default=2000)
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault-injection spec, e.g. "
                        "'link_down@1000:r3-r4,sm_drop:p=0.01' "
                        "(see docs/FAULTS.md)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for probabilistic fault realization")
    parser.add_argument("--verify", action="store_true",
                        help="attach the runtime invariant oracle; the run "
                        "fails on the first violated invariant "
                        "(docs/VERIFY.md)")
    parser.add_argument("--telemetry", action="store_true",
                        help="attach the recording telemetry observer; "
                        "telemetry_* tallies land in the point's event "
                        "counters (docs/TELEMETRY.md)")
    parser.add_argument("--engine", default=None,
                        choices=available_engines(),
                        help="simulation engine (default: the "
                        f"{ENGINE_ENV_VAR} environment variable, else "
                        "'reference'; engines are bit-identical — 'fast' "
                        "skips provably-no-op work, see docs/API.md)")


def cmd_designs(args) -> int:
    rows = [
        [name, d.topology, d.vcs_per_vnet, d.theory, d.scheme, d.adaptive]
        for name, d in sorted(ALL_DESIGNS.items())
    ]
    print(format_table(
        ["Name", "Topology", "VCs", "Theory", "Scheme", "Adaptivity"],
        rows, title="Available designs (Table III registry)"))
    return 0


def cmd_run(args) -> int:
    get_design(args.design)  # fail fast with the full list on a typo
    _validate_run_args(args)
    dragonfly = _parse_dragonfly(args.dragonfly)
    profiler = None
    if getattr(args, "profile", False):
        from repro.sim import PhaseProfiler

        profiler = PhaseProfiler()
    network, point = run_design(
        args.design, args.pattern, args.rate, _sim_config(args),
        seed=args.seed, mesh_side=args.mesh_side, dragonfly=dragonfly,
        tdd=args.tdd, faults=args.faults, fault_seed=args.fault_seed,
        verify=args.verify, telemetry=args.telemetry,
        engine=args.engine or "", profiler=profiler)
    rows = [
        ["offered load (flits/node/cycle)", args.rate],
        ["mean latency (cycles)", round(point.mean_latency, 2)],
        ["p99 latency (cycles)", round(point.p99_latency, 2)],
        ["received throughput", round(point.throughput, 4)],
        ["delivery ratio", round(point.delivery_ratio, 4)],
        ["wedged", point.wedged],
        ["spins", point.events.get("spins", 0)],
        ["probes sent", point.events.get("probes_sent", 0)],
        ["mean hops", round(network.stats.mean_hops(), 3)],
    ]
    if args.telemetry:
        rows += [
            ["telemetry samples", point.events.get("telemetry_samples", 0)],
            ["SPIN spans traced", point.events.get("telemetry_spans", 0)],
            ["spans recovered",
             point.events.get("telemetry_spans_recovered", 0)],
        ]
    if args.faults:
        rows += [
            ["faults injected", point.events.get("faults_injected", 0)],
            ["SMs dropped", point.events.get("sm_dropped", 0)],
            ["watchdog fires", point.events.get("watchdog_fires", 0)],
            ["SM retries", point.events.get("sm_retries", 0)],
            ["reroutes", point.events.get("reroutes", 0)],
            ["packets lost", point.packets_lost],
            ["recoveries after fault",
             point.events.get("recoveries_after_fault", 0)],
        ]
    print(format_table(
        ["Metric", "Value"], rows,
        title=f"{args.design} / {args.pattern} @ {args.rate}"))
    if profiler is not None:
        from repro.sim import render_report
        from repro.sim.engine_api import resolve_engine_name

        engine_name = resolve_engine_name(args.engine or None)
        print()
        print(render_report(profiler.report(engine_name, point.cycles)))
    return 0


def _sweep_campaign_inputs(args):
    """Resolve the sweep's specs, meta and campaign directory.

    Three shapes: ``--resume DIR`` rebuilds everything from the campaign
    manifest; ``--campaign DIR`` journals a (possibly pre-existing,
    matching) campaign; neither runs ephemerally.  Returns
    ``(specs, meta, campaign_dir, output, title)``.
    """
    from repro.harness.campaign import load_manifest, write_manifest
    from repro.harness.runner import ExperimentSpec

    if args.resume and args.campaign:
        raise ConfigurationError(
            "--resume and --campaign are mutually exclusive")
    if args.resume:
        if args.design or args.rates:
            raise ConfigurationError(
                "--resume reconstructs the sweep from the manifest; "
                "drop --design/--rates", resume=args.resume)
        specs, meta, settings = load_manifest(args.resume)
        output = args.output or settings.get("output")
        title = f"{meta.get('design')} / {meta.get('pattern')} (resumed)"
        return specs, meta, args.resume, output, title
    if not args.design or not args.rates:
        raise ConfigurationError(
            "sweep needs --design and --rates (or --resume DIR)")
    get_design(args.design)  # fail fast with the full list on a typo
    _validate_run_args(args)
    rates = [float(x) for x in args.rates.split(",")]
    base = ExperimentSpec(
        design=args.design, pattern=args.pattern, injection_rate=rates[0],
        seed=args.seed, mesh_side=args.mesh_side,
        dragonfly=_parse_dragonfly(args.dragonfly), tdd=args.tdd,
        faults=args.faults, fault_seed=args.fault_seed,
        sim=_sim_config(args), verify=args.verify,
        telemetry=args.telemetry, engine=args.engine or "")
    specs = base.curve(rates)
    # The meta block is deliberately deterministic (no timestamps, no
    # worker count), so the same sweep writes byte-identical files
    # regardless of --jobs — and regardless of interruptions + resumes.
    meta = {
        "design": resolve_design_name(args.design),
        "pattern": args.pattern,
        "seed": args.seed,
        "rates": rates,
        "faults": base.faults,
        "fault_seed": args.fault_seed,
    }
    if base.engine:
        # Only a pinned engine is sweep identity (engines are bit-identical;
        # an unset field keeps pre-engine manifests byte-compatible).
        meta["engine"] = base.engine
    if args.campaign:
        from pathlib import Path

        manifest = Path(args.campaign) / "manifest.json"
        if manifest.exists():
            stored, stored_meta, _ = load_manifest(args.campaign)
            if [s.content_key() for s in stored] != \
                    [s.content_key() for s in specs]:
                raise ConfigurationError(
                    "campaign directory belongs to a different sweep; "
                    "use --resume or a fresh directory",
                    campaign=args.campaign)
            meta = stored_meta
        else:
            write_manifest(args.campaign, specs, meta,
                           settings={"output": args.output})
    return specs, meta, args.campaign, args.output, \
        f"{args.design} / {args.pattern}"


def _print_failure_summary(failed) -> None:
    """Per-error-class failure table (satellite of docs/CAMPAIGNS.md)."""
    from repro.harness.supervision import error_class

    classes = {}
    for result in failed:
        label = error_class(result.error)
        count, example = classes.get(label, (0, None))
        classes[label] = (count + 1, example or result.spec)
    rows = [
        [label, count,
         f"{example.design} @ {example.injection_rate}"]
        for label, (count, example) in sorted(classes.items())
    ]
    print(format_table(
        ["Error class", "Points", "First failing spec"],
        rows, title=f"{len(failed)} point(s) failed"))


def cmd_sweep(args) -> int:
    """Run (or resume) a sweep; see docs/CAMPAIGNS.md for exit codes.

    0 success · 1 some points failed · 3 failure budget exhausted ·
    128+signum when draining on SIGINT/SIGTERM (the journal stays
    resumable) · 2 configuration errors (via the ReproError handler).
    """
    from repro.harness.campaign import CampaignConfig, CampaignEngine
    from repro.harness.supervision import RetryPolicy

    specs, meta, campaign_dir, output, title = _sweep_campaign_inputs(args)
    engine = CampaignEngine(
        specs, directory=campaign_dir,
        config=CampaignConfig(
            jobs=args.jobs,
            retry=RetryPolicy(retries=args.retries),
            max_failures=args.max_failures,
            hang_timeout=args.hang_timeout,
            stream=not args.no_stream))
    report = engine.run()
    rows = [
        [p.injection_rate, round(p.mean_latency, 1), round(p.throughput, 4),
         round(p.delivery_ratio, 3), p.wedged, p.events.get("spins", 0)]
        for p in report.points
    ]
    print(format_table(
        ["Rate", "Mean latency", "Throughput", "Delivered", "Wedged",
         "Spins"],
        rows, title=title))
    print(f"\nsaturation rate: {report.saturation_rate}")
    if campaign_dir and report.counters:
        tallies = " ".join(f"{name}={value}" for name, value
                           in sorted(report.counters.items()))
        print(f"campaign: {tallies}")
    if report.failed:
        _print_failure_summary(report.failed)
    if not report.completed and not report.clean:
        if report.status.startswith("interrupted:"):
            signame = report.status.split(":", 1)[1]
            print(f"campaign drained on {signame}; resume with: "
                  f"python -m repro.cli sweep --resume {campaign_dir}"
                  if campaign_dir else
                  f"sweep interrupted by {signame} (no campaign journal "
                  f"to resume; rerun with --campaign DIR)")
            signum = getattr(signal, signame, None)
            return 128 + int(signum) if signum is not None else 1
        print("campaign aborted: failure budget exhausted "
              f"(--max-failures {args.max_failures})")
        return 3
    if output and report.clean:
        meta = dict(meta)
        meta["saturation_rate"] = report.saturation_rate
        path = save_results(output, report.points, meta)
        print(f"wrote {len(report.points)} points to {path}")
    return 1 if report.failed else 0


def cmd_verify(args) -> int:
    """Differential conformance: same seeded load, several theories."""
    designs = ([resolve_design_name(name)
                for name in args.designs.split(",")]
               if args.designs else list(DEFAULT_TRIAD))
    seeds = [int(part) for part in args.seeds.split(",")]
    if len(designs) < 2:
        raise ConfigurationError(
            "--designs needs at least two comma-separated names",
            designs=designs)
    if not 0.0 < args.rate <= 1.0:
        raise ConfigurationError(
            "offered load must be in (0, 1] flits/node/cycle",
            rate=args.rate)
    if any(seed < 0 for seed in seeds):
        raise ConfigurationError("--seeds must all be >= 0", seeds=seeds)
    reports = []
    for seed in seeds:
        report = run_conformance(
            pattern=args.pattern, injection_rate=args.rate, seed=seed,
            designs=designs, mesh_side=args.mesh_side,
            engine=args.engine or "")
        reports.append(report)
        print(report.summary())
        print()
    agreed = all(report.agreed for report in reports)
    print(f"verdict: {len(reports)} seed(s), "
          + ("all agreed" if agreed else "DISAGREEMENT"))
    if args.output:
        import json

        payload = {
            "format": "repro.verify-conformance/v1",
            "agreed": agreed,
            "reports": [report.to_dict() for report in reports],
        }
        with open(args.output, "w", encoding="ascii") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0 if agreed else 1


def cmd_model_check(args) -> int:
    """Exhaustively model-check the SPIN control plane on a tiny design."""
    import json

    from repro.telemetry import MetricsRegistry
    from repro.verify.model import ModelChecker
    from repro.verify.model.designs import DESIGNS
    from repro.verify.model.transitions import MUTATIONS

    if args.design not in DESIGNS:
        raise ConfigurationError(
            f"unknown model design {args.design!r}",
            known=sorted(DESIGNS))
    if args.mutation is not None and args.mutation not in MUTATIONS:
        raise ConfigurationError(
            f"unknown mutation {args.mutation!r}", known=sorted(MUTATIONS))
    design = DESIGNS[args.design]
    config = design.model_config(
        initiators=None if args.race else 1,
        probe_budget=args.probe_budget,
        drop_budget=args.drop_budget,
        probe_move_enabled=(args.scheme == "spin-pm"),
        mutation=args.mutation,
    )

    registry = MetricsRegistry()
    states_counter = registry.counter("model_check_states")
    visited_gauge = registry.gauge("model_check_visited")
    frontier_gauge = registry.gauge("model_check_frontier")
    depth_gauge = registry.gauge("model_check_depth")
    ticks = [0]

    def progress(visited: int, frontier: int, depth: int) -> None:
        states_counter.inc(visited - states_counter.value)
        tick = ticks[0]
        ticks[0] = tick + 1
        visited_gauge.record(tick, visited)
        frontier_gauge.record(tick, frontier)
        depth_gauge.record(tick, depth)
        if not args.quiet:
            print(f"  ... visited={visited} frontier={frontier} "
                  f"depth={depth}", file=sys.stderr)

    checker = ModelChecker(config, weights=design.weights(),
                           persistence_bound=design.persistence_bound())
    result = checker.run(max_depth=args.max_depth,
                         max_states=args.max_states, progress=progress,
                         progress_every=args.progress_every)

    mode = "race" if args.race else "single-initiator"
    rows = [
        ["design", f"{args.design} ({design.description})"],
        ["scheme", args.scheme],
        ["mode", f"{mode}, drops<={config.drop_budget}, "
                 f"probes<={config.probe_budget}"],
        ["mutation", args.mutation or "none"],
        ["visited states", result.visited],
        ["transitions", result.transitions],
        ["max depth", result.max_depth],
        ["exhausted", "yes" if result.complete else
         "NO (hit --max-depth/--max-states)"],
    ]
    live = result.liveness
    if live is not None:
        rows += [
            ["terminals", f"{live.terminal_states} "
             f"({live.resolved_terminals} resolved, "
             f"{live.degraded_terminals} cleanly degraded)"],
            ["detection bound", f"{live.detection_cycles} cycles "
             f"({live.detection_steps} steps) to first commit"],
            ["spin-termination bound", f"{live.recovery_cycles} cycles "
             f"({live.recovery_steps} steps) to resolution"],
            ["persistence bound", f"{live.persistence_bound} cycles "
             f"(spin_persistence_bound)"],
            ["bounds proved", {True: "YES", False: "NO",
                               None: "n/a"}[live.bounds_proved]],
        ]
    print(format_table(["property", "value"], rows,
                       title="SPIN control-plane model check"))
    if result.counterexample is not None:
        print()
        print(result.counterexample.describe())
        print(f"\nmaps to invariant family: "
              f"{result.counterexample.violation.invariant}")

    if args.output:
        payload = result.summary()
        payload["design"] = args.design
        payload["scheme"] = args.scheme
        payload["telemetry"] = {
            "progress_reports": ticks[0],
            "peak_frontier": frontier_gauge.maximum(),
        }
        with open(args.output, "w", encoding="ascii") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    # Exit contract: a violation (or a failed liveness/bounds proof on an
    # exhausted space) fails; a capped-but-violation-free exploration is a
    # bounded check and passes, with "exhausted: NO" in the table.
    ok = result.ok
    if live is not None:
        ok = ok and live.live and live.bounds_proved is not False
    return 0 if ok else 1


def _topology_meta(network) -> dict:
    """Header fields describing the traced network's shape."""
    topology = network.topology
    name = type(topology).__name__.replace("Topology", "").lower()
    meta = {"topology": name}
    cols = getattr(topology, "cols", None)
    if name == "mesh" and cols:
        meta["mesh_side"] = cols
    return meta


def _trace_campaign(args) -> int:
    """Convert a campaign's ``stream.jsonl`` into trace artifacts.

    The campaign-level twin of the single-run trace: worker telemetry
    frames become a Chrome trace (one thread per worker, one slice per
    point) plus a normalized JSONL copy of the frames.
    """
    import json
    from pathlib import Path

    from repro.telemetry import (
        read_stream_log,
        stream_chrome_trace,
        stream_summary,
    )
    from repro.telemetry.live import STREAM_LOG_NAME

    log_path = Path(args.campaign) / STREAM_LOG_NAME
    frames = read_stream_log(log_path)
    if not frames:
        raise ConfigurationError(
            f"no stream frames in {log_path}; the campaign must have run "
            "with the live plane enabled (drop --no-stream)",
            campaign=args.campaign)
    jsonl_path = f"{args.output}.jsonl"
    chrome_path = f"{args.output}.chrome.json"
    with open(jsonl_path, "w", encoding="utf-8") as handle:
        for frame in frames:
            handle.write(json.dumps(frame, sort_keys=True,
                                    separators=(",", ":")) + "\n")
    with open(chrome_path, "w", encoding="utf-8") as handle:
        json.dump(stream_chrome_trace(frames), handle, sort_keys=True)
        handle.write("\n")
    summary = stream_summary(frames)
    print(f"campaign stream: {summary['frames']} frames from "
          f"{len(summary['workers'])} worker(s) over "
          f"{len(summary['points'])} point(s)")
    print(f"wrote {jsonl_path} ({len(frames)} frames)")
    print(f"wrote {chrome_path}")
    return 0


def cmd_trace(args) -> int:
    """Record one run under telemetry; emit JSONL + Chrome trace files."""
    import json

    from repro.telemetry import (
        TelemetryConfig,
        TelemetryObserver,
        build_records,
        chrome_trace,
        write_jsonl,
    )

    if args.campaign:
        return _trace_campaign(args)
    if args.interval < 1:
        raise ConfigurationError("--interval must be >= 1",
                                 interval=args.interval)
    config = TelemetryConfig(sample_interval=args.interval,
                             packet_traces=args.packet_traces)

    if args.scenario:
        from repro.sim import create_engine
        from repro.verify.golden import SCENARIOS

        if args.scenario not in SCENARIOS:
            raise ConfigurationError(
                f"unknown scenario {args.scenario!r}",
                known=sorted(SCENARIOS))
        scenario = SCENARIOS[args.scenario]
        network, traffic = scenario.builder()
        simulator = create_engine(args.engine)
        if traffic is not None:
            simulator.register(traffic)
        simulator.register(network)
        observer = TelemetryObserver(network, config).attach(simulator)
        simulator.run(scenario.cycles)
        observer.finalize(simulator.cycle)
        meta = {"scenario": scenario.name, "cycles": simulator.cycle}
        for key in ("routing", "tdd", "rate", "seed"):
            if key in scenario.params:
                meta[key] = scenario.params[key]
    else:
        if not args.design or args.rate is None:
            raise ConfigurationError(
                "trace needs --design and --rate (or --scenario NAME)")
        get_design(args.design)  # fail fast with the full list on a typo
        _validate_run_args(args)
        from repro.harness.runner import ExperimentSpec
        from repro.stats.sweep import simulate_point

        spec = ExperimentSpec(
            design=args.design, pattern=args.pattern,
            injection_rate=args.rate, seed=args.seed,
            mesh_side=args.mesh_side,
            dragonfly=_parse_dragonfly(args.dragonfly), tdd=args.tdd,
            faults=args.faults, fault_seed=args.fault_seed,
            sim=_sim_config(args), verify=args.verify,
            engine=args.engine or "")
        network, traffic, injector = spec.build()
        observer = TelemetryObserver(network, config)
        point = simulate_point(network, traffic, spec.sim,
                               injection_rate=spec.injection_rate,
                               injector=injector, verify=spec.verify,
                               telemetry_observer=observer,
                               engine=spec.engine or None)
        meta = {"design": spec.design, "pattern": spec.pattern,
                "injection_rate": spec.injection_rate, "seed": spec.seed,
                "cycles": point.cycles, "wedged": point.wedged}
    meta.update(_topology_meta(network))

    records = build_records(observer, meta)
    jsonl_path = f"{args.output}.jsonl"
    chrome_path = f"{args.output}.chrome.json"
    lines = write_jsonl(jsonl_path, records)
    with open(chrome_path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(records), handle, sort_keys=True)
        handle.write("\n")
    episodes = sum(1 for span in observer.spans
                   if span.kind == "spin_episode")
    print(f"recorded {len(observer.samples)} samples, "
          f"{episodes} SPIN episode(s), "
          f"{len(observer.spans) - episodes} frozen span(s), "
          f"{len(observer.hops)} hop record(s)")
    print(f"wrote {jsonl_path} ({lines} records)")
    print(f"wrote {chrome_path}")
    return 0


def cmd_report(args) -> int:
    """Summarize a telemetry log — or a whole campaign directory."""
    from pathlib import Path

    from repro.telemetry import TraceReport

    if args.top_links < 1:
        raise ConfigurationError("--top-links must be >= 1",
                                 top_links=args.top_links)
    path = Path(args.trace)
    if path.is_dir():
        if not (path / "manifest.json").exists():
            raise ConfigurationError(
                f"{path} is a directory but has no manifest.json — "
                "pass a TRACE.jsonl file or a campaign directory",
                trace=args.trace)
        from repro.telemetry.watch import render_campaign_report

        sys.stdout.write(render_campaign_report(path))
        return 0
    report = TraceReport.load(args.trace)
    print(report.render(top_links=args.top_links))
    return 0


def cmd_area(args) -> int:
    spec = RouterSpec(radix=args.radix, vcs=args.vcs,
                      buffer_depth=args.depth, flit_bits=args.flit_bits)
    area_model = AreaModel()
    energy_model = EnergyModel()
    rows = [
        ["router area (a.u.)", round(area_model.router_area(spec), 1)],
        ["router power (a.u.)", round(energy_model.router_power(spec), 1)],
        ["+ SPIN modules", round(area_model.spin_overhead(
            spec, args.routers), 1)],
        ["+ static bubble", round(area_model.static_bubble_overhead(spec), 1)],
        ["+ escape VC", round(area_model.escape_vc_overhead(spec), 1)],
    ]
    print(format_table(["Quantity", "Value"], rows,
                       title=f"radix={args.radix} vcs={args.vcs}"))
    return 0


def cmd_watch(args) -> int:
    """Live plain-ANSI dashboard over a campaign's ``status.json``.

    ``--once`` renders a single frame (the CI smoke path); otherwise the
    screen refreshes every ``--interval`` seconds until the campaign
    reaches a terminal status or the user hits Ctrl-C.
    """
    import time

    from repro.telemetry.watch import load_status, render_watch

    if args.interval <= 0:
        raise ConfigurationError("--interval must be positive",
                                 interval=args.interval)
    if args.once:
        sys.stdout.write(render_watch(args.directory))
        return 0
    try:
        while True:
            frame = render_watch(args.directory)
            sys.stdout.write("\x1b[2J\x1b[H" + frame)
            sys.stdout.flush()
            status = load_status(args.directory)
            if status is not None and status.get("status") != "running":
                print(f"\ncampaign {status.get('status')}; exiting watch")
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def cmd_serve_metrics(args) -> int:
    """Prometheus text exposition over a campaign's ``status.json``."""
    from repro.telemetry.prometheus import serve

    if args.port < 0 or args.port > 65535:
        raise ConfigurationError("--port must be in [0, 65535]",
                                 port=args.port)
    return serve(args.directory, port=args.port, once=args.once)


def cmd_profile(args) -> int:
    """Phase-profile one design point under each engine and compare.

    Runs the same spec per engine with an attached
    :class:`repro.sim.profile.PhaseProfiler`, prints each phase table,
    and cross-checks that the profiled points are identical (profiling
    must never perturb simulation; engines are bit-identical).
    """
    import time

    from repro.harness.runner import ExperimentSpec
    from repro.sim import PhaseProfiler, PROFILE_SCHEMA, render_report
    from repro.sim.engine_api import resolve_engine_name
    from repro.sim.profile import write_report

    get_design(args.design)  # fail fast with the full list on a typo
    _validate_run_args(args)
    engines_text = args.engines or args.engine or "reference,fast"
    engines = [name.strip() for name in engines_text.split(",")
               if name.strip()]
    known = available_engines()
    for name in engines:
        if name not in known:
            raise ConfigurationError(f"unknown engine {name!r}",
                                     known=sorted(known))
    if not engines:
        raise ConfigurationError("--engines must name at least one engine")

    reports = {}
    fingerprints = {}
    for name in engines:
        spec = ExperimentSpec(
            design=args.design, pattern=args.pattern,
            injection_rate=args.rate, seed=args.seed,
            mesh_side=args.mesh_side,
            dragonfly=_parse_dragonfly(args.dragonfly), tdd=args.tdd,
            faults=args.faults, fault_seed=args.fault_seed,
            sim=_sim_config(args), verify=args.verify,
            telemetry=args.telemetry, engine=name)
        profiler = PhaseProfiler()
        start = time.perf_counter()
        _, point = spec.run(profiler=profiler)
        wall = time.perf_counter() - start
        report = profiler.report(resolve_engine_name(name), point.cycles,
                                 wall_seconds=wall)
        reports[resolve_engine_name(name)] = report
        fingerprints[name] = (point.delivered, point.cycles,
                              round(point.mean_latency, 9),
                              point.events.get("spins", 0))
        print(render_report(report))
        print()
    agreed = len(set(fingerprints.values())) <= 1
    if agreed:
        delivered, cycles, _, spins = next(iter(fingerprints.values()))
        print(f"engines agree on the profiled point "
              f"(delivered={delivered} cycles={cycles} spins={spins})")
    else:
        print("WARNING: engines disagreed on the profiled point — "
              "engines are bit-identical, so this is a bug:")
        for name, fingerprint in fingerprints.items():
            print(f"  {name}: delivered/cycles/latency/spins = "
                  f"{fingerprint}")
    if args.output:
        payload = {
            "schema": PROFILE_SCHEMA,
            "design": resolve_design_name(args.design),
            "pattern": args.pattern,
            "rate": args.rate,
            "seed": args.seed,
            "identical_points": agreed,
            "reports": reports,
        }
        write_report(args.output, payload)
        print(f"wrote {args.output}")
    return 0 if agreed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SPIN (ISCA 2018) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list design configurations")

    run_parser = sub.add_parser("run", help="simulate one design point")
    _add_run_args(run_parser)
    run_parser.add_argument("--rate", type=float, required=True,
                            help="offered load in flits/node/cycle")
    run_parser.add_argument("--profile", action="store_true",
                            help="attach the phase profiler and print a "
                            "repro.profile/v1 phase breakdown after the "
                            "metrics (never changes results; "
                            "docs/OBSERVE.md)")

    sweep_parser = sub.add_parser(
        "sweep",
        help="latency-vs-injection sweep (crash-safe with --campaign; "
        "see docs/CAMPAIGNS.md)")
    _add_run_args(sweep_parser, design_required=False)
    sweep_parser.add_argument("--rates", default=None,
                              help="comma-separated offered loads "
                              "(required unless --resume)")
    sweep_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                              help="worker processes (1 = serial; results "
                              "are identical either way)")
    sweep_parser.add_argument("--output", default=None, metavar="FILE.json",
                              help="write the points as a "
                              "repro.sweep-results/v1 JSON file")
    sweep_parser.add_argument("--campaign", default=None, metavar="DIR",
                              help="journal completed points durably into "
                              "DIR (repro.campaign/v1) so an interrupted "
                              "sweep can be resumed")
    sweep_parser.add_argument("--resume", default=None, metavar="DIR",
                              help="resume the campaign journaled in DIR; "
                              "already-completed points are skipped and "
                              "the final artifact is byte-identical to an "
                              "uninterrupted run")
    sweep_parser.add_argument("--retries", type=int, default=2, metavar="N",
                              help="bounded retries for transient worker "
                              "failures (crash/hang/timeout), with "
                              "deterministic exponential backoff "
                              "(default: %(default)s)")
    sweep_parser.add_argument("--max-failures", type=int, default=None,
                              metavar="N",
                              help="abort the campaign (exit 3) once more "
                              "than N points have permanently failed "
                              "(default: unlimited)")
    sweep_parser.add_argument("--hang-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="kill and respawn a worker whose point "
                              "exceeds this wall-clock budget (counts as "
                              "a transient failure; default: off)")
    sweep_parser.add_argument("--no-stream", action="store_true",
                              help="disable the live observability plane "
                              "(no status.json/stream.jsonl in the "
                              "campaign directory); sweep results are "
                              "byte-identical either way "
                              "(docs/OBSERVE.md)")

    verify_parser = sub.add_parser(
        "verify",
        help="differential conformance: run the same seeded experiment "
        "under several deadlock-freedom theories and assert agreement")
    verify_parser.add_argument(
        "--designs", default=None,
        help="comma-separated design names sharing one topology/size "
        f"(default: {','.join(DEFAULT_TRIAD)})")
    verify_parser.add_argument("--pattern", default="uniform")
    verify_parser.add_argument("--rate", type=float, default=0.12,
                               help="offered load (keep below saturation "
                               "of every design)")
    verify_parser.add_argument("--seeds", default="1,2,3",
                               help="comma-separated seeds, one "
                               "conformance run each")
    verify_parser.add_argument("--mesh-side", type=int, default=4)
    verify_parser.add_argument("--output", default=None,
                               metavar="FILE.json",
                               help="write the full reports as JSON")
    verify_parser.add_argument("--engine", default=None,
                               choices=available_engines(),
                               help="simulation engine every scheme runs "
                               "under (engines are bit-identical)")

    trace_parser = sub.add_parser(
        "trace",
        help="record one run's telemetry; emit JSONL + Chrome trace files")
    _add_run_args(trace_parser, design_required=False)
    trace_parser.add_argument("--rate", type=float, default=None,
                              help="offered load in flits/node/cycle "
                              "(required unless --scenario)")
    trace_parser.add_argument("--scenario", default=None, metavar="NAME",
                              help="record a pinned golden scenario "
                              "instead of a design point "
                              "(repro.verify.golden, e.g. "
                              "mesh4_square_deadlock)")
    trace_parser.add_argument("--interval", type=int, default=16,
                              help="cycles between metric samples "
                              "(default: %(default)s)")
    trace_parser.add_argument("--packet-traces", action="store_true",
                              help="also record per-packet hop/delivery "
                              "events")
    trace_parser.add_argument("--output", default="trace", metavar="PREFIX",
                              help="writes PREFIX.jsonl and "
                              "PREFIX.chrome.json (default: %(default)s)")
    trace_parser.add_argument("--campaign", default=None, metavar="DIR",
                              help="instead of simulating, convert DIR's "
                              "stream.jsonl (live worker telemetry) into "
                              "PREFIX.jsonl + PREFIX.chrome.json")

    report_parser = sub.add_parser(
        "report",
        help="summarize a recorded telemetry log: SPIN episodes, hot "
        "links, wedge timeline, occupancy heatmap")
    report_parser.add_argument("trace", metavar="TRACE.jsonl|CAMPAIGN_DIR",
                               help="JSONL log written by `trace`, or a "
                               "campaign directory (journal table + "
                               "stream aggregates)")
    report_parser.add_argument("--top-links", type=int, default=8,
                               help="hot links to list "
                               "(default: %(default)s)")

    model_parser = sub.add_parser(
        "model-check",
        help="exhaustively enumerate the SPIN control plane's state "
        "space on a tiny design; prove safety and recovery bounds "
        "(repro.verify.model, docs/VERIFY.md)")
    model_parser.add_argument("--design", default="mesh2x2",
                              help="model design name: mesh2x2, mesh2x3, "
                              "ring3, ring4 (default: %(default)s)")
    model_parser.add_argument("--scheme", default="spin",
                              choices=["spin", "spin-pm"],
                              help="spin-pm enables the PROBE_MOVE "
                              "forwarding-after-progress phase "
                              "(default: %(default)s)")
    model_parser.add_argument("--race", action="store_true",
                              help="let every router initiate recovery "
                              "(full interleaving races); default is the "
                              "pinned single-initiator mode whose "
                              "exhaustive graph proves the latency "
                              "bounds")
    model_parser.add_argument("--drop-budget", type=int, default=0,
                              help="adversarial SM drops to explore "
                              "(default: %(default)s)")
    model_parser.add_argument("--probe-budget", type=int, default=1,
                              help="detection probes each router may "
                              "send (default: %(default)s)")
    model_parser.add_argument("--mutation", default=None,
                              help="inject a named protocol mutation and "
                              "expect a counterexample "
                              "(repro.verify.model.transitions.MUTATIONS)")
    model_parser.add_argument("--max-depth", type=int, default=None,
                              help="BFS depth cap (default: exhaust)")
    model_parser.add_argument("--max-states", type=int, default=1_000_000,
                              help="visited-state cap "
                              "(default: %(default)s)")
    model_parser.add_argument("--progress-every", type=int, default=1000,
                              help="states between progress reports "
                              "(default: %(default)s)")
    model_parser.add_argument("--quiet", action="store_true",
                              help="suppress stderr progress lines "
                              "(telemetry gauges still record)")
    model_parser.add_argument("--output", default=None,
                              metavar="FILE.json",
                              help="write the state-space summary "
                              "artifact as JSON")

    area_parser = sub.add_parser("area", help="router cost model")
    area_parser.add_argument("--radix", type=int, default=5)
    area_parser.add_argument("--vcs", type=int, default=3)
    area_parser.add_argument("--depth", type=int, default=5)
    area_parser.add_argument("--flit-bits", type=int, default=128)
    area_parser.add_argument("--routers", type=int, default=64)

    watch_parser = sub.add_parser(
        "watch",
        help="live dashboard for a running (or finished) campaign "
        "directory: progress, worker health, saturation cursor "
        "(docs/OBSERVE.md)")
    watch_parser.add_argument("directory", metavar="CAMPAIGN_DIR",
                              help="campaign directory (sweep --campaign)")
    watch_parser.add_argument("--once", action="store_true",
                              help="render one frame and exit (scripting "
                              "and CI smoke)")
    watch_parser.add_argument("--interval", type=float, default=2.0,
                              metavar="SECONDS",
                              help="seconds between refreshes "
                              "(default: %(default)s)")

    serve_parser = sub.add_parser(
        "serve-metrics",
        help="Prometheus text exposition of a campaign's live status "
        "(stdlib HTTP server at /metrics, or --once to stdout)")
    serve_parser.add_argument("directory", metavar="CAMPAIGN_DIR",
                              help="campaign directory (sweep --campaign)")
    serve_parser.add_argument("--once", action="store_true",
                              help="print one exposition to stdout and "
                              "exit (the CI lint path)")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="HTTP port (default: ephemeral)")

    profile_parser = sub.add_parser(
        "profile",
        help="per-phase wall-time breakdown of the simulation kernel "
        "for one design point, per engine (repro.profile/v1; "
        "docs/OBSERVE.md)")
    _add_run_args(profile_parser)
    profile_parser.add_argument("--rate", type=float, default=0.1,
                                help="offered load in flits/node/cycle "
                                "(default: %(default)s)")
    profile_parser.add_argument("--engines", default=None,
                                metavar="NAMES",
                                help="comma-separated engines to profile "
                                "(default: --engine if given, else "
                                "'reference,fast')")
    profile_parser.add_argument("--output", default=None,
                                metavar="FILE.json",
                                help="write the per-engine "
                                "repro.profile/v1 reports as JSON")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "designs": cmd_designs,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "verify": cmd_verify,
        "trace": cmd_trace,
        "report": cmd_report,
        "model-check": cmd_model_check,
        "area": cmd_area,
        "watch": cmd_watch,
        "serve-metrics": cmd_serve_metrics,
        "profile": cmd_profile,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ReproError as exc:
        # Friendly one-line failure for interactive use; tests call main()
        # directly and still see the typed exception.
        print(f"error: {exc}", file=sys.stderr)
        sys.exit(2)
