"""Avoidance designs must never deadlock — at any load, ever.

The recovery designs are allowed to deadlock (they then recover); the
Dally/Duato/flow-control designs must make deadlock impossible.  These
tests hammer each avoidance design far beyond saturation and check the
ground-truth oracle every few hundred cycles.
"""

import pytest

from repro.config import NetworkConfig
from repro.deadlock.bubble import BubbleFlowControlRouting
from repro.deadlock.waitgraph import has_deadlock
from repro.harness.configs import build_network
from repro.network.network import Network
from repro.routing.dor import DimensionOrderRouting
from repro.sim.engine import Simulator
from repro.topology.torus import TorusTopology
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern


def hammer(network, rate=0.6, cycles=3000, seed=13, cols=None):
    network.stats.open_window(0, cycles)
    traffic = SyntheticTraffic(
        network, make_pattern("uniform", network.topology.num_nodes,
                              cols=cols),
        rate, seed=seed, stop_at=cycles, mix=PacketMix.single(1))
    sim = Simulator()
    sim.register(traffic)
    sim.register(network)
    for _ in range(cycles // 300):
        sim.run(300)
        assert not has_deadlock(network, sim.cycle), (
            f"avoidance design deadlocked at cycle {sim.cycle}")
    return network


class TestAvoidanceNeverDeadlocks:
    @pytest.mark.parametrize("design", [
        "mesh:westfirst-1vc",
        "mesh:westfirst-3vc",
        "mesh:escapevc-2vc",
        "mesh:escapevc-3vc",
    ])
    def test_mesh_avoidance_under_hammer(self, design):
        network = build_network(design, seed=13, mesh_side=4)
        hammer(network, cols=4)

    def test_dragonfly_dally_ugal_under_hammer(self):
        network = build_network("dfly:ugal-dally-3vc", seed=13,
                                dragonfly=(2, 4, 2))
        hammer(network, rate=0.5)

    def test_torus_bubble_under_hammer(self):
        network = Network(TorusTopology(4, 4), NetworkConfig(vcs_per_vnet=1),
                          BubbleFlowControlRouting(13), seed=13)
        hammer(network, cols=None)

    def test_torus_dor_without_bubble_is_the_counterexample(self):
        # Sanity: the hammer is strong enough that removing the bubble
        # protection does deadlock the torus.
        network = Network(TorusTopology(4, 4), NetworkConfig(vcs_per_vnet=1),
                          DimensionOrderRouting(13), seed=13)
        network.stats.open_window(0, 3000)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.6, seed=13,
            stop_at=3000, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        deadlocked = False
        for _ in range(10):
            sim.run(300)
            if has_deadlock(network, sim.cycle):
                deadlocked = True
                break
        assert deadlocked


class TestRecoveryDesignsRecover:
    @pytest.mark.parametrize("design", [
        "mesh:staticbubble-2vc",
        "mesh:minadaptive-spin-1vc",
    ])
    def test_recovery_design_never_stays_deadlocked(self, design):
        network = build_network(design, seed=13, mesh_side=4, tdd=24)
        network.stats.open_window(0, 1000)
        traffic = SyntheticTraffic(
            network, make_pattern("uniform", 16), 0.5, seed=13,
            stop_at=1000, mix=PacketMix.single(1))
        sim = Simulator()
        sim.register(traffic)
        sim.register(network)
        sim.run(1000)
        # Deadlocks may exist transiently; after the load stops and ample
        # recovery time passes, none may remain.
        sim.run(9000)
        assert not has_deadlock(network, sim.cycle)
        assert network.idle_cycles() < 9000  # recovery made progress
