"""Unit tests for statistics collection and injection sweeps."""

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.network.packet import Packet
from repro.stats.collectors import LatencySummary, NetworkStats
from repro.stats.sweep import (
    InjectionSweep,
    SaturationCursor,
    SweepPoint,
    curve_saturation_rate,
    curve_saturation_throughput,
    run_point,
    simulate_point,
    truncate_at_saturation,
)
from repro.traffic.generator import PacketMix, SyntheticTraffic
from repro.traffic.patterns import make_pattern

from tests.conftest import make_mesh_network


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_percentiles(self):
        # Nearest-rank: ordered[ceil(f * n) - 1]; at n=100 the p50 is the
        # 50th value, not the 51st (the old int() truncation's off-by-one).
        summary = LatencySummary.from_samples(list(range(1, 101)))
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == 50
        assert summary.p95 == 95
        assert summary.p99 == 99
        assert summary.maximum == 100

    def test_percentiles_nearest_rank_small_counts(self):
        # Regression for the int(fraction * count) off-by-one: small
        # samples must follow the nearest-rank rule exactly.
        assert LatencySummary.from_samples([7]).p50 == 7
        assert LatencySummary.from_samples([7]).p99 == 7
        two = LatencySummary.from_samples([1, 9])
        assert two.p50 == 1      # ceil(0.5 * 2) - 1 = index 0
        assert two.p99 == 9      # ceil(0.99 * 2) - 1 = index 1
        four = LatencySummary.from_samples([10, 20, 30, 40])
        assert four.p50 == 20    # ceil(2.0) - 1 = index 1 (old code: 30)
        assert four.p95 == 40
        ten = LatencySummary.from_samples(list(range(1, 11)))
        assert ten.p50 == 5      # old code read index 5 -> 6
        assert ten.p95 == 10
        assert ten.p99 == 10


class TestNetworkStats:
    def _packet(self, length=2):
        packet = Packet(0, 1, 0, 1, length=length, create_cycle=10)
        return packet

    def test_window_marks_measured(self):
        stats = NetworkStats()
        stats.open_window(100, 200)
        inside = self._packet()
        outside = self._packet()
        stats.record_creation(inside, 150)
        stats.record_creation(outside, 250)
        assert inside.measured and not outside.measured
        assert stats.measured_created == 1

    def test_delivery_accounting(self):
        stats = NetworkStats()
        stats.open_window(0, 100)
        packet = self._packet(length=3)
        stats.record_creation(packet, 50)
        packet.inject_cycle = 55
        packet.eject_cycle = 70
        stats.record_delivery(packet, 70)
        assert stats.measured_flits_delivered == 3
        assert stats.latencies == [60]
        assert stats.network_latencies == [15]
        assert stats.delivery_ratio() == 1.0

    def test_throughput(self):
        stats = NetworkStats()
        stats.open_window(0, 100)
        for _ in range(10):
            packet = self._packet(length=5)
            stats.record_creation(packet, 10)
            packet.inject_cycle = 11
            packet.eject_cycle = 30
            stats.record_delivery(packet, 30)
        assert stats.throughput(measure_cycles=100, num_nodes=5) == pytest.approx(0.1)

    def test_event_counter(self):
        stats = NetworkStats()
        stats.count("spins")
        stats.count("spins", 4)
        assert stats.events["spins"] == 5

    def test_point_kwargs_match_point_fields(self):
        stats = NetworkStats()
        stats.open_window(0, 100)
        packet = self._packet(length=5)
        stats.record_creation(packet, 10)
        packet.inject_cycle = 11
        packet.eject_cycle = 30
        stats.record_delivery(packet, 30)
        stats.count("spins", 2)
        kwargs = stats.point_kwargs(measure_cycles=100, num_nodes=4)
        point = SweepPoint(injection_rate=0.1, wedged=False, **kwargs)
        assert point.delivered == 1
        assert point.events == {"spins": 2}
        assert point.mean_latency == pytest.approx(20.0)


def _traffic_factory(network, rate, stop_at):
    return SyntheticTraffic(network, make_pattern("uniform", 16), rate,
                            seed=4, stop_at=stop_at,
                            mix=PacketMix.single(1))


class TestRunPoint:
    def test_low_load_point(self):
        sim_config = SimulationConfig(warmup_cycles=200, measure_cycles=1000,
                                      drain_cycles=800)
        network, point = run_point(
            lambda: make_mesh_network(side=4, vcs=2),
            _traffic_factory,
            sim_config, injection_rate=0.05)
        assert point.delivery_ratio == 1.0
        assert not point.wedged
        assert 4 < point.mean_latency < 30
        assert point.throughput == pytest.approx(0.05, rel=0.25)
        assert point.cycles == sim_config.total_cycles

    def test_wedge_detection(self):
        sim_config = SimulationConfig(warmup_cycles=100, measure_cycles=1500,
                                      drain_cycles=1500,
                                      deadlock_abort_cycles=600)
        network, point = run_point(
            lambda: make_mesh_network(side=4, vcs=1),  # no SPIN: deadlocks
            _traffic_factory,
            sim_config, injection_rate=0.45)
        assert point.wedged
        assert point.cycles < sim_config.total_cycles  # aborted early

    def test_rate_required_with_canonical_factory(self):
        sim_config = SimulationConfig(warmup_cycles=50, measure_cycles=100,
                                      drain_cycles=50)
        with pytest.raises(ConfigurationError, match="injection_rate"):
            run_point(lambda: make_mesh_network(side=4, vcs=2),
                      _traffic_factory, sim_config)

    def test_legacy_factory_shape_deprecated_but_working(self):
        sim_config = SimulationConfig(warmup_cycles=100, measure_cycles=400,
                                      drain_cycles=300)
        with pytest.warns(DeprecationWarning, match="network, rate, stop_at"):
            network, point = run_point(
                lambda: make_mesh_network(side=4, vcs=2),
                lambda net, stop: _traffic_factory(net, 0.05, stop),
                sim_config, injection_rate=0.05)
        assert point.injection_rate == 0.05
        assert point.delivered > 0

    def test_legacy_factory_infers_rate_from_traffic(self):
        sim_config = SimulationConfig(warmup_cycles=100, measure_cycles=400,
                                      drain_cycles=300)
        with pytest.warns(DeprecationWarning):
            _, point = run_point(
                lambda: make_mesh_network(side=4, vcs=2),
                lambda net, stop: _traffic_factory(net, 0.07, stop),
                sim_config)  # no injection_rate declared
        assert point.injection_rate == 0.07

    def test_declared_rate_must_match_traffic(self):
        sim_config = SimulationConfig(warmup_cycles=100, measure_cycles=400,
                                      drain_cycles=300)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="disagrees"):
                run_point(
                    lambda: make_mesh_network(side=4, vcs=2),
                    lambda net, stop: _traffic_factory(net, 0.20, stop),
                    sim_config, injection_rate=0.05)


class TestSimulatePoint:
    def _components(self, rate=0.05, vcs=2):
        network = make_mesh_network(side=4, vcs=vcs)
        sim_config = SimulationConfig(warmup_cycles=100, measure_cycles=400,
                                      drain_cycles=300)
        stop_at = sim_config.warmup_cycles + sim_config.measure_cycles
        traffic = _traffic_factory(network, rate, stop_at)
        return network, traffic, sim_config

    def test_rate_taken_from_traffic_when_unspecified(self):
        network, traffic, sim_config = self._components(rate=0.06)
        point = simulate_point(network, traffic, sim_config)
        assert point.injection_rate == 0.06

    def test_rate_mismatch_raises_before_simulation(self):
        network, traffic, sim_config = self._components(rate=0.06)
        with pytest.raises(ConfigurationError, match="disagrees"):
            simulate_point(network, traffic, sim_config, injection_rate=0.3)

    def test_wedge_poll_interval_is_configurable(self):
        # A coarse poll interval still detects the wedge, just later; a
        # fine interval detects it within one abort window of the stall.
        for interval in (50, 700):
            network = make_mesh_network(side=4, vcs=1)
            sim_config = SimulationConfig(
                warmup_cycles=100, measure_cycles=1500, drain_cycles=1500,
                deadlock_abort_cycles=600, wedge_poll_interval=interval)
            stop_at = sim_config.warmup_cycles + sim_config.measure_cycles
            traffic = _traffic_factory(network, 0.45, stop_at)
            point = simulate_point(network, traffic, sim_config)
            assert point.wedged
            # The run advances in poll-interval chunks past the warmup.
            assert (point.cycles - sim_config.warmup_cycles) % interval == 0

    def test_wedge_poll_interval_validated(self):
        with pytest.raises(ConfigurationError, match="wedge_poll_interval"):
            SimulationConfig(wedge_poll_interval=0)


class TestInjectionSweep:
    def test_sweep_stops_after_saturation(self):
        sim_config = SimulationConfig(warmup_cycles=200, measure_cycles=800,
                                      drain_cycles=500)
        sweep = InjectionSweep(
            lambda: make_mesh_network(side=4, vcs=2),
            _traffic_factory,
            sim_config,
            rates=[0.02, 0.1, 0.2, 0.3, 0.4, 0.6, 0.9],
        )
        points = sweep.run()
        assert 2 <= len(points) <= 7
        saturation = sweep.saturation_rate(points)
        assert 0.02 <= saturation < 0.9

    def test_saturation_monotone_in_vcs(self):
        sim_config = SimulationConfig(warmup_cycles=200, measure_cycles=800,
                                      drain_cycles=500)

        def saturation(vcs):
            sweep = InjectionSweep(
                lambda: make_mesh_network(side=4, vcs=vcs),
                _traffic_factory, sim_config,
                rates=[0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5])
            return sweep.saturation_rate(sweep.run())

        # More VCs -> at least as much sustainable load (deadlocks aside,
        # low-load points here stay below deadlock formation).
        assert saturation(3) >= saturation(1)

    def test_class_methods_match_module_helpers(self):
        points = [
            SweepPoint(0.05, 10.0, 20.0, 0.05, 1.0, False, 100),
            SweepPoint(0.10, 12.0, 25.0, 0.10, 1.0, False, 100),
            SweepPoint(0.20, 90.0, 300.0, 0.11, 0.9, False, 100),
        ]
        sweep = InjectionSweep(None, None, None, rates=[], latency_cap=4.0)
        assert sweep.saturation_rate(points) == \
            curve_saturation_rate(points, 4.0) == 0.10
        assert sweep.saturation_throughput(points) == \
            curve_saturation_throughput(points, 4.0) == 0.10


class TestSaturationHelpers:
    def _curve(self):
        return [
            SweepPoint(0.05, 10.0, 20.0, 0.05, 1.0, False, 100),
            SweepPoint(0.10, 12.0, 25.0, 0.10, 1.0, False, 100),
            SweepPoint(0.20, 90.0, 300.0, 0.11, 0.9, False, 100),  # saturated
            SweepPoint(0.30, 200.0, 500.0, 0.10, 0.5, False, 50),
        ]

    def test_truncate_matches_serial_stop(self):
        kept = truncate_at_saturation(self._curve())
        assert [p.injection_rate for p in kept] == [0.05, 0.10, 0.20]

    def test_truncate_with_extra_points(self):
        kept = truncate_at_saturation(self._curve(), points_past_saturation=1)
        assert len(kept) == 4

    def test_cursor_incremental_equals_truncate(self):
        cursor = SaturationCursor()
        stops = [cursor.push(p) for p in self._curve()[:3]]
        assert stops == [False, False, True]

    def test_empty_curve(self):
        assert truncate_at_saturation([]) == []
        assert curve_saturation_rate([]) == 0.0
        assert curve_saturation_throughput([]) == 0.0


class TestSweepPoint:
    def test_saturated_flags(self):
        good = SweepPoint(0.1, 20.0, 40.0, 0.1, 1.0, False, 100)
        assert not good.saturated(zero_load_latency=15.0)
        slow = SweepPoint(0.5, 200.0, 400.0, 0.2, 1.0, False, 100)
        assert slow.saturated(zero_load_latency=15.0)
        lossy = SweepPoint(0.5, 20.0, 40.0, 0.2, 0.5, False, 100)
        assert lossy.saturated(zero_load_latency=15.0)
        wedged = SweepPoint(0.5, 20.0, 40.0, 0.2, 1.0, True, 100)
        assert wedged.saturated(zero_load_latency=15.0)

    def test_dict_round_trip(self):
        point = SweepPoint(0.15, 23.5, 80.0, 0.14, 0.99, False, 421,
                           events={"spins": 3, "probes_sent": 17},
                           link_utilization=(0.2, 0.01, 0.79),
                           packets_lost=2, cycles=4400)
        assert SweepPoint.from_dict(point.to_dict()) == point

    def test_from_dict_rejects_unknown_fields(self):
        point = SweepPoint(0.1, 10.0, 20.0, 0.1, 1.0, False, 10)
        data = point.to_dict()
        data["latency_p75"] = 12.0
        with pytest.raises(ConfigurationError, match="unknown SweepPoint"):
            SweepPoint.from_dict(data)
