"""Counterexample -> replayable golden scenario pipeline.

A model-checker counterexample lives in the abstract control plane; to be
trusted (and to stay caught) it must also fail *concretely*.  This module
closes that loop:

1. :func:`scenario_from_counterexample` wraps a checker counterexample,
   its design, and the mutation that produced it into a
   :class:`CounterexampleScenario`;
2. ``scenario.replay()`` rebuilds the design's planted-loop network,
   applies a scripted **intervention** that inflicts the same protocol
   mistake on the real control plane, and runs the reference simulator
   under the invariant oracle in record mode;
3. the round-trip tests (tests/property/test_prop_model_roundtrip.py)
   assert that the replay trips the same invariant *family* the abstract
   property maps onto (:data:`~repro.verify.model.properties
   .PROPERTY_TO_INVARIANT`) — and that the unmutated replay is clean;
4. ``scenario.fixture()`` renders the whole story (abstract trace,
   expected invariant, replay parameters) as a JSON-serializable payload,
   written under tests/fixtures/model/ so a regression can be re-examined
   without re-running the checker.

Interventions mirror the model mutations, not merely *some* bug:

* ``freeze_ignores_state_guard`` froze a router the guard should have
  skipped.  Concretely we clobber a FROZEN controller's state without the
  thaw bookkeeping — an FSM step outside the per-cycle legality catalog
  (``fsm_transition``).
* ``progress_skips_home_guards`` let an initiator commit without its home
  checks, double-spending the freeze token.  Concretely we stamp a second
  VC with an existing token's (source, spin cycle, path index)
  (``freeze_token_uniqueness``).
* ``kill_return_declares_progress`` resolved the deadlock flag on a kill
  round.  Concretely the spin "completes" — controllers are told progress
  happened — but no packet moves, so the planted deadlock outlives the
  theory's persistence bound (``deadlock_persistence``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.fsm import SpinState
from repro.verify.model.checker import CheckResult, Counterexample
from repro.verify.model.designs import DESIGNS, Design
from repro.verify.model.state import GlobalState

#: Fixture payload format tag (bump on incompatible change).
FIXTURE_FORMAT = "repro.model-cex/v1"


# ----------------------------------------------------------------------
# Scripted interventions (one per model mutation)
# ----------------------------------------------------------------------
class _Intervention:
    """A cycle-loop component that inflicts one protocol mistake.

    Registered *after* the network so its ``phase_control`` runs once the
    real control plane has settled; the oracle (an observer) then samples
    the corrupted state at the end of the same cycle.
    """

    def __init__(self, network) -> None:
        self.network = network
        self.fired_at: Optional[int] = None


class _ClobberFrozenState(_Intervention):
    """freeze_ignores_state_guard: a freeze whose bookkeeping is skipped.

    The planted loops are symmetric, so every router detects in the same
    cycle and nobody is left in DD to be frozen by a rival's move — the
    exact scene the model reaches by interleaving.  The intervention
    scripts that skew concretely: it stalls router 0's detection countdown
    until a rival initiator's move freezes it (FSM FROZEN), then enacts
    the guard-skipping freeze's damage — the state is clobbered to OFF
    with the thaw bookkeeping skipped.  FROZEN -> OFF is provably
    impossible per cycle (:data:`repro.verify.invariants
    .ILLEGAL_TRANSITIONS`), so the oracle reports ``fsm_transition``.
    """

    def __init__(self, network) -> None:
        super().__init__(network)
        self._held: Dict[int, SpinState] = {}

    def phase_control(self, cycle: int) -> None:
        spin = self.network.spin
        if spin is None or self.fired_at is not None:
            return
        for controller in spin.controllers:
            before = self._held.get(controller.router.id)
            if (before is SpinState.FROZEN
                    and controller.state is SpinState.FROZEN):
                controller.state = SpinState.OFF
                controller.pointer = None
                controller.deadline = None
                self.fired_at = cycle
                break
        else:
            victim = spin.controllers[0]
            if victim.state is SpinState.DD and victim.deadline is not None:
                # Detection skew: hold the victim one countdown-expiry
                # short so a rival initiator's move finds it freezable.
                victim.deadline = max(victim.deadline, cycle + 2)
        self._held = {c.router.id: c.state for c in spin.controllers}


class _DoubleSpendFreezeToken(_Intervention):
    """progress_skips_home_guards: the freeze token spent twice.

    Once any VC is frozen, stamps a second occupied VC with the same
    (source, spin cycle) token at the same path index — two claims to one
    slot of the synchronized spin.
    """

    def phase_control(self, cycle: int) -> None:
        if self.fired_at is not None:
            return
        frozen = None
        spare = None
        for router in self.network.routers:
            for _inport, vcs in router.all_inports():
                for vc in vcs:
                    if vc.frozen and vc.freeze_source >= 0:
                        frozen = frozen or vc
                    elif vc.packet is not None and not vc.frozen:
                        spare = spare or vc
        if frozen is None or spare is None:
            return
        spare.freeze(outport=frozen.freeze_outport,
                     source=frozen.freeze_source,
                     spin_cycle=frozen.freeze_spin_cycle,
                     path_index=frozen.freeze_path_index)
        self.fired_at = cycle


class _PhantomSpin(_Intervention):
    """kill_return_declares_progress: progress declared, none made.

    Replaces the executor's rotation with unfreeze-only: every spin
    "completes" (controllers run ``on_spin_complete`` and reset to
    detection believing the loop advanced) but no packet moves, so the
    planted deadlock persists through endless confident recoveries until
    it outlives :func:`repro.deadlock.waitgraph.spin_persistence_bound`.
    """

    def __init__(self, network) -> None:
        super().__init__(network)
        executor = network.spin.executor
        tracker = self

        def unfreeze_only(entries, now):
            if tracker.fired_at is None:
                tracker.fired_at = now
            for vc in entries:
                vc.clear_freeze()

        executor._rotate = unfreeze_only

    def phase_control(self, cycle: int) -> None:  # pragma: no cover
        pass  # the damage is done at executor level


INTERVENTIONS = {
    "freeze_ignores_state_guard": _ClobberFrozenState,
    "progress_skips_home_guards": _DoubleSpendFreezeToken,
    "kill_return_declares_progress": _PhantomSpin,
}


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayOutcome:
    """What one concrete replay observed."""

    families: Tuple[str, ...]          # invariant families violated, sorted
    violations: Tuple[str, ...]        # rendered violation messages
    cycles_run: int
    intervention_fired_at: Optional[int]
    delivered: int

    def tripped(self, invariant: str) -> bool:
        return invariant in self.families


def _replay(design: Design, mutation: Optional[str], cycles: int,
            engine: Optional[str] = None) -> ReplayOutcome:
    from repro.sim import create_engine
    from repro.verify.oracle import InvariantOracle, OracleConfig

    network = design.build_network()
    simulator = create_engine(engine)
    simulator.register(network)
    intervention = None
    if mutation is not None:
        intervention = INTERVENTIONS[mutation](network)
        simulator.register(intervention)
    oracle = InvariantOracle(network, OracleConfig(mode="record"))
    oracle.attach(simulator)
    simulator.run(cycles)
    families = sorted({v.context["invariant"] for v in oracle.violations
                       if "invariant" in v.context})
    return ReplayOutcome(
        families=tuple(families),
        violations=tuple(str(v) for v in oracle.violations),
        cycles_run=cycles,
        intervention_fired_at=(intervention.fired_at
                               if intervention is not None else None),
        delivered=network.stats.packets_delivered,
    )


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CounterexampleScenario:
    """One checker counterexample bound to its concrete replay."""

    name: str
    design: Design
    mutation: str
    counterexample: Counterexample
    model_summary: Dict[str, object]

    @property
    def expected_invariant(self) -> str:
        """The invariant family the replay must trip."""
        return self.counterexample.violation.invariant

    def replay_cycles(self) -> int:
        """Enough cycles for the slowest intervention to be judged: the
        persistence bound plus margin for the oracle's check cadence."""
        return design_replay_cycles(self.design)

    def replay(self, engine: Optional[str] = None,
               cycles: Optional[int] = None) -> ReplayOutcome:
        """Rebuild the fabric, inflict the mistake, record violations."""
        return _replay(self.design, self.mutation,
                       cycles or self.replay_cycles(), engine)

    def replay_clean(self, engine: Optional[str] = None,
                     cycles: Optional[int] = None) -> ReplayOutcome:
        """The control replay: same fabric, no intervention."""
        return _replay(self.design, None,
                       cycles or self.replay_cycles(), engine)

    def fixture(self) -> Dict[str, object]:
        """JSON-serializable record of the abstract trace and replay."""
        cex = self.counterexample
        return {
            "format": FIXTURE_FORMAT,
            "name": self.name,
            "design": self.design.name,
            "mutation": self.mutation,
            "property": cex.violation.prop,
            "detail": cex.violation.detail,
            "expected_invariant": self.expected_invariant,
            "depth": cex.depth,
            "trace": [
                {"action": action, "state": _state_record(state)}
                for action, state in cex.trace
            ],
            "initial": _state_record(cex.initial),
            "replay": {
                "engine": "reference",
                "cycles": self.replay_cycles(),
                "loop_size": self.design.loop_size,
                "tdd": self.design.tdd,
            },
            "model": self.model_summary,
        }

    def write(self, out_dir: Path) -> Path:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"{self.name}.json"
        path.write_text(json.dumps(self.fixture(), indent=2,
                                   sort_keys=True) + "\n")
        return path


def design_replay_cycles(design: Design) -> int:
    """Cycles a replay runs: past the persistence bound with margin for
    the oracle's periodic deadlock census."""
    return design.persistence_bound() + 4 * design.tdd + 256


def _state_record(state: GlobalState) -> Dict[str, object]:
    return {
        "routers": [
            {"fsm": r.fsm.name, "frozen_by": r.frozen_by,
             "latched": r.latched, "probes_left": r.probes_left}
            for r in state.routers
        ],
        "messages": [
            {"kind": m.kind, "origin": m.origin, "at": m.at, "hops": m.hops}
            for m in state.messages
        ],
        "drops_left": state.drops_left,
        "resolved": state.resolved,
    }


def scenario_from_counterexample(result: CheckResult, design: Design,
                                 mutation: str) -> CounterexampleScenario:
    """Bind a violating check result to its concrete replay scenario."""
    if result.counterexample is None:
        raise ValueError("check result has no counterexample to convert")
    summary = result.summary()
    summary.pop("counterexample", None)  # the trace is stored structured
    return CounterexampleScenario(
        name=f"cex_{design.name}_{mutation}",
        design=design,
        mutation=mutation,
        counterexample=result.counterexample,
        model_summary=summary,
    )


def load_fixture(path: Path) -> Dict[str, object]:
    """Read and sanity-check a counterexample fixture payload."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FIXTURE_FORMAT:
        raise ValueError(f"not a {FIXTURE_FORMAT} fixture: {path}")
    return payload


def regenerate(out_dir: Path, designs: Optional[List[str]] = None,
               max_states: int = 200_000) -> List[Path]:
    """Re-derive every mutation counterexample fixture.

    Runs the checker once per (design, mutation) in *race* mode — all
    three mutations need rival interleavings to manifest (an initiator
    being frozen, two recoveries double-spending a token, a busy-kill
    declaring progress), so the pinned single-initiator mode is provably
    blind to them and race mode is the interesting exercise.  BFS stops
    at the first (minimal) violation, so each run explores only a few
    hundred states.  ``python -m repro.verify.model.scenario``.
    """
    from repro.verify.model.checker import ModelChecker

    written: List[Path] = []
    for name in designs or ("ring3", "mesh2x2"):
        design = DESIGNS[name]
        for mutation in sorted(INTERVENTIONS):
            config = design.model_config(mutation=mutation)
            result = ModelChecker(
                config, weights=design.weights(),
                persistence_bound=design.persistence_bound(),
            ).run(max_states=max_states)
            if result.counterexample is None:
                raise AssertionError(
                    f"mutation {mutation} produced no counterexample on "
                    f"{name} — the checker lost a detection")
            scenario = scenario_from_counterexample(result, design, mutation)
            written.append(scenario.write(Path(out_dir)))
    return written


if __name__ == "__main__":  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(
        description="regenerate model counterexample fixtures")
    parser.add_argument("--out", default="tests/fixtures/model")
    args = parser.parse_args()
    for path in regenerate(Path(args.out)):
        print(path)
