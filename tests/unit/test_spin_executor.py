"""Unit tests for the spin executor (synchronized rotation + safety guards)."""

from repro.config import SpinParams
from repro.deadlock.waitgraph import has_deadlock
from repro.sim.engine import Simulator
from repro.topology.ring import CLOCKWISE, COUNTER_CLOCKWISE

from tests.conftest import (
    craft_ring_deadlock,
    craft_square_deadlock,
    make_mesh_network,
    make_ring_network,
)


def deadlocked_ring(m=6, tdd=8, **spin_kwargs):
    network = make_ring_network(m=m, spin=SpinParams(tdd=tdd, **spin_kwargs))
    packets = craft_ring_deadlock(network)
    sim = Simulator()
    sim.register(network)
    return network, packets, sim


class TestRotation:
    def test_spin_moves_every_packet_one_hop(self):
        network, packets, sim = deadlocked_ring()
        sim.run(40)  # detection + probe + move + spin
        assert network.stats.events.get("spins", 0) >= 1
        assert all(p.hops >= 1 for p in packets)
        assert all(p.spins >= 1 for p in packets)

    def test_spin_preserves_packets(self):
        network, packets, sim = deadlocked_ring()
        sim.run(200)
        delivered = network.stats.packets_delivered
        in_flight = network.packets_in_flight()
        assert delivered + in_flight == len(packets)
        assert delivered == len(packets)  # dst two hops away: all arrive

    def test_spin_resolves_oracle_deadlock(self):
        network, packets, sim = deadlocked_ring()
        sim.run(2)
        assert has_deadlock(network, sim.cycle)
        sim.run(200)
        assert not has_deadlock(network, sim.cycle)

    def test_multi_flit_spin(self):
        network, packets, sim = deadlocked_ring()
        # Replace with 5-flit packets (buffers are 5 deep: still one packet
        # per VC).
        network2 = make_ring_network(m=6, spin=SpinParams(tdd=8))
        packets2 = craft_ring_deadlock(network2, length=5)
        sim2 = Simulator()
        sim2.register(network2)
        sim2.run(400)
        assert network2.stats.packets_delivered == len(packets2)

    def test_square_mesh_deadlock_resolved(self):
        network = make_mesh_network(side=4, spin=SpinParams(tdd=8))
        packets = craft_square_deadlock(network)
        sim = Simulator()
        sim.register(network)
        sim.run(2)
        assert has_deadlock(network, sim.cycle)
        sim.run(300)
        assert network.stats.packets_delivered == len(packets)
        assert network.stats.events.get("spins", 0) >= 1


class TestSafetyGuards:
    def test_broken_chain_aborts_not_crashes(self):
        network, packets, sim = deadlocked_ring()
        sim.run(14)  # probes are back; moves in flight freezing VCs
        # Sabotage: manually unfreeze one frozen VC (simulates a lost
        # kill_move race).  The spin group is then incomplete.
        frozen = [vc for _, _, vc in network.occupied_vcs() if vc.frozen]
        if frozen:
            frozen[0].clear_freeze()
        sim.run(400)
        # The network still recovers eventually (retries) and loses nothing.
        assert network.stats.packets_delivered == len(packets)

    def test_busy_link_aborts_spin(self):
        network, packets, sim = deadlocked_ring()
        sim.run(14)
        # Occupy one of the ring's clockwise links far into the future.
        network.routers[2].out_links[CLOCKWISE].busy_until = 10_000
        cycles = 0
        while cycles < 300:
            sim.run(10)
            cycles += 10
        # Without that link no complete spin can happen on loops through
        # router 2, but aborted groups must unfreeze and not wedge the FSMs.
        assert network.stats.events.get(
            "spins_aborted", 0) + network.stats.events.get("spins", 0) >= 1
        frozen_now = [vc for _, _, vc in network.occupied_vcs() if vc.frozen]
        # No VC may stay frozen past its spin cycle.
        for vc in frozen_now:
            assert vc.freeze_spin_cycle >= sim.cycle - 1

    def test_registry_drains(self):
        network, packets, sim = deadlocked_ring()
        sim.run(400)
        assert network.spin.executor.pending_spins() == 0
        assert network.spin.frozen_vc_count() == 0


class TestFalsePositiveClassification:
    def test_true_deadlock_labelled(self):
        network, packets, sim = deadlocked_ring()
        network.spin.collect_ground_truth = True
        sim.run(60)
        assert network.stats.events.get("spins_true_deadlock", 0) >= 1
        assert network.stats.events.get("spins_false_positive", 0) == 0
