"""Unidirectional-friendly ring topology.

The smallest substrate on which routing deadlocks form; used throughout the
test suite to craft deterministic deadlocked rings for the SPIN theorem
bounds (paper Sec. III), and as the base case of the bubble-flow-control
scheme family.
"""

from __future__ import annotations

from typing import List

from repro.errors import TopologyError
from repro.topology.base import LinkSpec, Topology

#: Port toward the next router (id + 1 mod n).
CLOCKWISE = 0
#: Port toward the previous router (id - 1 mod n).
COUNTER_CLOCKWISE = 1


class RingTopology(Topology):
    """A bidirectional ring of ``n`` routers, one terminal each."""

    name = "ring"

    def __init__(self, num_routers: int, link_latency: int = 1,
                 bidirectional: bool = True) -> None:
        super().__init__()
        if num_routers < 3:
            raise TopologyError("ring needs at least 3 routers")
        self._num_routers = num_routers
        self.link_latency = link_latency
        self.bidirectional = bidirectional
        self._links = self._build_links()

    @property
    def num_routers(self) -> int:
        return self._num_routers

    @property
    def num_nodes(self) -> int:
        return self._num_routers

    def router_of_node(self, node: int) -> int:
        return node

    def clockwise_neighbor(self, router: int) -> int:
        """The router reached through the clockwise port."""
        return (router + 1) % self._num_routers

    def counter_clockwise_neighbor(self, router: int) -> int:
        """The router reached through the counter-clockwise port."""
        return (router - 1) % self._num_routers

    def links(self) -> List[LinkSpec]:
        return self._links

    def min_hops(self, src_router: int, dst_router: int) -> int:
        forward = (dst_router - src_router) % self._num_routers
        if not self.bidirectional:
            return forward
        return min(forward, self._num_routers - forward)

    def _build_links(self) -> List[LinkSpec]:
        links = []
        for router in range(self._num_routers):
            nxt = self.clockwise_neighbor(router)
            links.append(LinkSpec(router, CLOCKWISE, nxt,
                                  COUNTER_CLOCKWISE, self.link_latency))
            if self.bidirectional:
                links.append(LinkSpec(nxt, COUNTER_CLOCKWISE, router,
                                      CLOCKWISE, self.link_latency))
        if not self.bidirectional:
            # A unidirectional ring still needs symmetric channel records for
            # validation; model the reverse direction as the same channel.
            reverse = [
                LinkSpec(link.dst, link.dst_port, link.src, link.src_port,
                         link.latency)
                for link in links
            ]
            links.extend(reverse)
        return links
