"""Engine parity matrix: every registered design, both engines, bit for bit.

The acceptance bar for the struct-of-arrays fast core: across *all*
registered designs — whitelisted ones that take the SoA path and
non-whitelisted ones that must fall back to the pure reference schedule —
the ``fast`` engine produces :class:`SweepPoint` results identical to the
reference engine, field for field, at a low and a congested load with
different seeds.

Kept deliberately tiny (4x4 fabrics, short windows) so the 21-design
matrix stays affordable in tier-1; the full-size sweeps run in the
``engine-parity`` CI job and the benchmark's identity gates.
"""

from dataclasses import replace

import pytest

from repro.config import SimulationConfig
from repro.harness.configs import ALL_DESIGNS
from repro.harness.runner import ExperimentSpec

TINY = SimulationConfig(warmup_cycles=50, measure_cycles=200,
                        drain_cycles=150, deadlock_abort_cycles=300)

#: (injection rate, traffic seed): one quiet point, one congested point
#: under a different seed — congestion exercises SPIN recovery on the
#: aggressive designs and the wait/select randomness on the adaptive ones.
LOADS = [(0.02, 1), (0.10, 7)]


@pytest.mark.parametrize("design", sorted(ALL_DESIGNS))
def test_design_is_engine_parity_clean(design):
    for rate, seed in LOADS:
        spec = ExperimentSpec(design=design, pattern="uniform",
                              injection_rate=rate, seed=seed,
                              mesh_side=4, tdd=32, sim=TINY)
        _, reference = replace(spec, engine="reference").run()
        _, fast = replace(spec, engine="fast").run()
        assert fast.to_dict() == reference.to_dict(), (
            f"{design} rate={rate} seed={seed}: fast engine diverged "
            f"from reference")
